// Observability overhead check: the metrics stack must be close to free.
//
// Runs the same Huffman pipeline configuration three ways — metrics off,
// registry attached, registry + background-style sampler attached — and
// compares best-of-N wall-clock times. The run is a virtual-time simulation,
// so any wall-clock delta is pure instrumentation cost (observer dispatch,
// sharded counter increments, sampler ticks).
//
// Exits non-zero if instrumented runs regress by more than the threshold
// (default 2 %, override with TVS_OVERHEAD_MAX_PCT). With `--report <dir>`,
// writes the numbers into a run-report bundle like the figure benches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "bench_util.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/sampler.h"

namespace {

using Clock = std::chrono::steady_clock;

double timed_ms(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::init_reports(argc, argv);
  const int reps = 5;
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);

  std::printf("Metrics overhead: sim run, best of %d (interleaved)\n", reps);

  const std::function<void()> run_off = [&] { (void)pipeline::run_sim(cfg); };
  const std::function<void()> run_registry = [&] {
    metrics::Registry reg;
    pipeline::RunOptions opt;
    opt.registry = &reg;
    (void)pipeline::run_sim(cfg, opt);
  };
  const std::function<void()> run_full = [&] {
    metrics::Registry reg;
    metrics::Sampler sampler;
    pipeline::RunOptions opt;
    opt.registry = &reg;
    opt.sampler = &sampler;
    opt.sample_interval_us = 10'000;
    (void)pipeline::run_sim(cfg, opt);
  };

  run_off();  // warmup: fault in the corpus and code paths once

  // Interleave the three stacks within each repetition so machine drift
  // (frequency scaling, cache state) biases them equally; keep the best.
  double off_ms = 1e300, reg_ms = 1e300, full_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    off_ms = std::min(off_ms, timed_ms(run_off));
    reg_ms = std::min(reg_ms, timed_ms(run_registry));
    full_ms = std::min(full_ms, timed_ms(run_full));
  }

  const double reg_pct = (reg_ms - off_ms) / off_ms * 100.0;
  const double full_pct = (full_ms - off_ms) / off_ms * 100.0;
  std::printf("  metrics off          : %8.2f ms\n", off_ms);
  std::printf("  registry attached    : %8.2f ms (%+.2f%%)\n", reg_ms, reg_pct);
  std::printf("  registry + sampler   : %8.2f ms (%+.2f%%)\n", full_ms,
              full_pct);

  double max_pct = 2.0;
  if (const char* env = std::getenv("TVS_OVERHEAD_MAX_PCT")) {
    max_pct = std::strtod(env, nullptr);
  }

  if (benchutil::report_dir_ref()) {
    // One instrumented reference run provides the registry/sampler content.
    metrics::Registry reg;
    metrics::Sampler sampler;
    pipeline::RunOptions opt;
    opt.registry = &reg;
    opt.sampler = &sampler;
    const auto res = pipeline::run_sim(cfg, opt);
    // The measured overhead numbers ride along as gauges, so they land in
    // the snapshot section of the report (and the .prom export).
    reg.gauge("tvs_bench_overhead_ms", "stack=\"off\"").set(off_ms);
    reg.gauge("tvs_bench_overhead_ms", "stack=\"registry\"").set(reg_ms);
    reg.gauge("tvs_bench_overhead_ms", "stack=\"registry_sampler\"")
        .set(full_ms);
    reg.gauge("tvs_bench_overhead_pct", "stack=\"registry\"").set(reg_pct);
    reg.gauge("tvs_bench_overhead_pct", "stack=\"registry_sampler\"")
        .set(full_pct);
    reg.gauge("tvs_bench_overhead_budget_pct").set(max_pct);
    report::RunInfo info = pipeline::run_info(cfg, res, "sim");
    info.scenario = "overhead_metrics [" + cfg.label() + "]";
    const auto bundle = report::make_report(info, &reg, &sampler);
    for (const auto& path : report::write_bundle(
             bundle, *benchutil::report_dir_ref(), "overhead_metrics")) {
      std::printf("  report %s\n", path.c_str());
    }
  }

  const double worst = full_pct > reg_pct ? full_pct : reg_pct;
  if (worst > max_pct) {
    std::printf("FAIL: instrumentation overhead %.2f%% exceeds %.2f%% budget\n",
                worst, max_pct);
    return 1;
  }
  std::printf("OK: worst-case overhead %.2f%% within %.2f%% budget\n", worst,
              max_pct);
  return 0;
}
