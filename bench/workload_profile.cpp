// Workload convergence profiler (ablation, not a paper figure).
//
// For each synthetic workload, prints the tolerance-check quantity the
// speculation layer sees: for a guess adopted at estimate s and checked at
// estimate k, delta(s,k) = |bits(T_s, H_k) - bits(T_k, H_k)| / bits(T_k, H_k).
// The paper's rollback thresholds (no rollbacks beyond step 8 for BMP, 16
// for PDF, none ever for TXT at 1 % tolerance) correspond to delta dropping
// below the tolerance for all k ≥ s.
#include <cstdio>
#include <vector>

#include "huffman/canonical.h"
#include "huffman/tree.h"
#include "workload/corpus.h"

namespace {

constexpr std::size_t kBlock = 4096;
constexpr std::size_t kReduceRatio = 16;

struct Profile {
  std::vector<huff::Histogram> prefixes;  // prefix histogram per estimate
  std::vector<huff::CodeTable> tables;    // floored table per estimate
};

Profile profile_of(wl::FileKind kind) {
  const auto data = wl::make_corpus(kind);
  const std::size_t n_blocks = (data.size() + kBlock - 1) / kBlock;
  const std::size_t n_reduces = (n_blocks + kReduceRatio - 1) / kReduceRatio;

  Profile p;
  huff::Histogram prefix;
  std::size_t b = 0;
  for (std::size_t r = 0; r < n_reduces; ++r) {
    for (std::size_t i = 0; i < kReduceRatio && b < n_blocks; ++i, ++b) {
      const std::size_t begin = b * kBlock;
      const std::size_t len = std::min(kBlock, data.size() - begin);
      prefix.count(std::span<const std::uint8_t>(data).subspan(begin, len));
    }
    p.prefixes.push_back(prefix);
    p.tables.push_back(huff::CodeTable::from_lengths(
        huff::HuffmanTree::build(prefix.with_floor(1)).lengths()));
  }
  return p;
}

double delta(const Profile& p, std::size_t s, std::size_t k) {
  const auto cur_bits = p.tables[k].encoded_bits(p.prefixes[k]);
  const auto guess_bits = p.tables[s].encoded_bits(p.prefixes[k]);
  const auto diff = guess_bits > cur_bits ? guess_bits - cur_bits
                                          : cur_bits - guess_bits;
  return static_cast<double>(diff) / static_cast<double>(cur_bits) * 100.0;
}

void print_profile(wl::FileKind kind) {
  const Profile p = profile_of(kind);
  const std::size_t n = p.prefixes.size();
  std::printf("\n== %s: %zu estimates (reduce ratio %zu, %zu KiB per estimate)\n",
              wl::to_string(kind).c_str(), n, kReduceRatio,
              kBlock * kReduceRatio / 1024);
  std::printf("%-8s", "s\\k");
  const std::size_t steps[] = {1, 2, 4, 8, 16, 32};
  for (std::size_t s : steps) {
    if (s <= n) std::printf("  s=%-4zu", s);
  }
  std::printf("\n");
  // Rows: check points (multiples of 8 plus final); columns: guess points.
  for (std::size_t k = 8; k <= n; k += 8) {
    const std::size_t kk = std::min(k, n) - 1;
    std::printf("k=%-6zu", kk + 1);
    for (std::size_t s : steps) {
      if (s > n) continue;
      if (s - 1 > kk) {
        std::printf("  %-6s", "-");
      } else {
        std::printf("  %-6.2f", delta(p, s - 1, kk));
      }
    }
    std::printf("\n");
  }
  // Final row (vs true histogram).
  std::printf("k=FIN%-2s", "");
  for (std::size_t s : steps) {
    if (s > n) continue;
    std::printf("  %-6.2f", delta(p, s - 1, n - 1));
  }
  std::printf("  (%% size delta; tolerance baseline = 1.00)\n");
}

}  // namespace

int main() {
  std::printf("Workload convergence profile: delta(s,k) in %% of compressed size\n");
  for (wl::FileKind kind : wl::all_kinds()) {
    print_profile(kind);
  }
  return 0;
}
