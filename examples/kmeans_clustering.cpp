// Speculative k-means: the third application of tolerant value speculation.
//
// A serial chain of Lloyd iterations refines cluster centroids from a
// training sample while a large dataset waits to be labelled. Speculation
// adopts an early iterate's centroids and starts labelling immediately; the
// tolerance is semantic — "at most X% of sample points would switch
// clusters".
//
//   $ ./kmeans_clustering [tolerance] [spread]
#include <cstdio>
#include <cstdlib>

#include "kmeans/kmeans_pipeline.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

int main(int argc, char** argv) {
  const double tolerance = argc > 1 ? std::atof(argv[1]) : 0.02;
  const double spread = argc > 2 ? std::atof(argv[2]) : 0.6;

  const km::Dataset data = km::make_blobs(256 * 1024, 4, 8, 2026, spread);

  km::KmeansPipelineConfig cfg;
  cfg.k = 8;
  cfg.iterations = 15;
  cfg.sample_points = 2048;
  cfg.block_points = 4096;
  cfg.spec.tolerance = tolerance;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(4);

  std::printf("dataset: %zu points, %zu dims, blob spread %.2f\n",
              data.size(), data.dims, spread);
  std::printf("tolerance: %.1f%% of sample points may switch clusters\n\n",
              tolerance * 100.0);

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    km::KmeansPipeline pl(rt, data, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();

    double avg = 0.0;
    for (auto l : pl.trace().latencies()) avg += static_cast<double>(l);
    avg /= static_cast<double>(pl.trace().size());
    std::printf("%-12s makespan=%8llu us  avg block latency=%8.0f us  "
                "rollbacks=%llu  committed=%s\n",
                speculation ? "speculative" : "natural",
                static_cast<unsigned long long>(ex.makespan_us()), avg,
                static_cast<unsigned long long>(pl.rollbacks()),
                pl.speculation_committed() ? "yes" : "no");
    return std::make_pair(pl.labels(),
                          km::inertia(pl.committed_centroids(), data));
  };

  const auto [natural_labels, natural_inertia] = run(false);
  const auto [spec_labels, spec_inertia] = run(true);

  std::size_t differ = 0;
  for (std::size_t i = 0; i < natural_labels.size(); ++i) {
    if (natural_labels[i] != spec_labels[i]) ++differ;
  }
  std::printf("\nlabel disagreement vs fully converged: %.3f%% of points\n",
              100.0 * static_cast<double>(differ) /
                  static_cast<double>(natural_labels.size()));
  std::printf("clustering quality (inertia): natural=%.1f speculative=%.1f "
              "(%+.2f%%)\n",
              natural_inertia, spec_inertia,
              (spec_inertia - natural_inertia) / natural_inertia * 100.0);
  std::printf("(try a higher spread, e.g. 1.6, to see rollbacks kick in)\n");
  return 0;
}
