// Speculative route planning: simulated annealing refines a delivery tour
// while thousands of customer locations wait to be matched onto route
// edges. Speculation matches against an early tour and validates with a
// relative tour-cost tolerance — and because annealing keeps improving,
// tight tolerances trigger repeated rollback/re-speculate cycles, which
// this example makes visible.
//
//   $ ./route_planner [tolerance]
#include <cstdio>
#include <cstdlib>

#include "anneal/anneal_pipeline.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

int main(int argc, char** argv) {
  const double tolerance = argc > 1 ? std::atof(argv[1]) : 0.30;

  const ann::Cities cities = ann::make_cities(120, 77);
  const auto queries = ann::make_queries(cities, 32 * 1024, 5);

  ann::AnnealPipelineConfig cfg;
  cfg.sweeps = 28;
  cfg.block_points = 1024;
  cfg.spec.tolerance = tolerance;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(2);

  // Show the annealing cost curve: the non-monotone estimate stream.
  {
    ann::Annealer preview(cities, cfg.solver_seed);
    std::printf("annealing cost per sweep:\n  ");
    for (std::size_t s = 0; s < cfg.sweeps; ++s) {
      std::printf("%.0f ", preview.sweep());
    }
    std::printf("\n");
  }
  std::printf("tolerance: %.0f%% of sampled points may re-match\n\n", tolerance * 100.0);

  auto run = [&](bool speculation)
      -> std::pair<std::vector<std::uint32_t>, ann::Tour> {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    ann::AnnealPipeline pl(rt, cities, queries, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    double avg = 0.0;
    for (auto l : pl.trace().latencies()) avg += static_cast<double>(l);
    avg /= static_cast<double>(pl.trace().size());
    std::printf("%-12s makespan=%8llu us  avg block latency=%8.0f us  "
                "rollbacks=%llu  committed=%s  tour=%.0f\n",
                speculation ? "speculative" : "natural",
                static_cast<unsigned long long>(ex.makespan_us()), avg,
                static_cast<unsigned long long>(pl.rollbacks()),
                pl.speculation_committed() ? "yes" : "no",
                ann::tour_cost(cities, pl.committed_tour()));
    return {pl.matches(), pl.committed_tour()};
  };

  const auto [natural, ntour] = run(false);
  const auto [speculative, stour] = run(true);

  // Edge indices are tour-relative: compare matched edges as unordered city
  // pairs, the consumer-visible quantity the tolerance bounds.
  const auto edge_cities = [](const ann::Tour& t, std::uint32_t e) {
    const std::size_t n = t.order.size();
    std::uint32_t u = t.order[e];
    std::uint32_t v = t.order[(e + 1) % n];
    if (u > v) std::swap(u, v);
    return std::pair{u, v};
  };
  std::size_t differ = 0;
  for (std::size_t i = 0; i < natural.size(); ++i) {
    if (edge_cities(ntour, natural[i]) != edge_cities(stour, speculative[i])) {
      ++differ;
    }
  }
  std::printf("\nmatching disagreement vs final tour: %.2f%% of points\n",
              100.0 * static_cast<double>(differ) /
                  static_cast<double>(natural.size()));
  std::printf("(tighten the tolerance, e.g. 0.01, to watch repeated "
              "rollbacks; loosen it, e.g. 0.5, for maximal overlap)\n");
  return 0;
}
