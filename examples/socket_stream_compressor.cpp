// Streaming compressor over slow I/O — the paper's second motivating case
// ("data trickles into the system slowly, and a prefix of the data can be
// speculated upon").
//
// Runs the REAL threaded runtime (worker + feeder + director threads), with
// a simulated long-distance socket feeding blocks on a (time-compressed)
// WAN schedule. Writes the compressed artifact to disk as a .tvsh container
// and decodes it back as proof.
//
//   $ ./socket_stream_compressor [output.tvsh]
#include <cstdio>
#include <string>

#include "huffman/stream_format.h"
#include "pipeline/driver.h"

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "/tmp/stream.tvsh";

  pipeline::RunConfig config = pipeline::RunConfig::x86_socket(
      wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
  config.bytes = 1024 * 1024;  // 1 MiB over the simulated WAN

  std::printf("streaming %zu KiB over a simulated socket "
              "(%llu us/block, time compressed 100x)...\n",
              config.bytes / 1024,
              static_cast<unsigned long long>(config.socket_per_block_us));

  // Real threads; the feeder injects each 4 KiB block on the socket
  // schedule scaled by 0.01 (so ~1.4 s of WAN time runs in ~14 ms).
  const pipeline::RunResult result =
      pipeline::run_threaded(config, /*workers=*/4, /*arrival_time_scale=*/0.01);
  pipeline::verify_roundtrip(result);

  huff::write_file(out_path, result.container);
  const auto reread = huff::read_file(out_path);
  const auto decoded = huff::decompress_buffer(reread);
  if (decoded != result.input) {
    std::fprintf(stderr, "FATAL: artifact on disk failed to round-trip\n");
    return 1;
  }

  const auto summary = result.latency_summary();
  std::printf("wrote %s (%zu bytes, %.1f%% of input)\n", out_path.c_str(),
              result.container.size(),
              100.0 * static_cast<double>(result.container.size()) /
                  static_cast<double>(result.input.size()));
  std::printf("decoded artifact matches input: OK\n");
  std::printf("speculation committed: %s, rollbacks: %llu\n",
              result.spec_committed ? "yes" : "no",
              static_cast<unsigned long long>(result.rollbacks));
  std::printf("per-block wall-clock latency: %s\n",
              summary.to_string().c_str());
  std::printf("(with speculation, blocks are encoded as they arrive instead\n"
              " of waiting for the full stream — compare the mean latency to\n"
              " the total stream duration)\n");
  return 0;
}
