// Quickstart: compress a stream with tolerant value speculation.
//
// Demonstrates the three-line happy path (configure → run → verify) plus
// what the result object tells you about the speculation that happened.
//
//   $ ./quickstart [txt|bmp|pdf]
#include <cstdio>
#include <string>

#include "pipeline/driver.h"

namespace {

wl::FileKind parse_kind(int argc, char** argv) {
  if (argc < 2) return wl::FileKind::Txt;
  const std::string arg = argv[1];
  if (arg == "bmp") return wl::FileKind::Bmp;
  if (arg == "pdf") return wl::FileKind::Pdf;
  return wl::FileKind::Txt;
}

}  // namespace

int main(int argc, char** argv) {
  const wl::FileKind kind = parse_kind(argc, argv);

  // 1. Configure: the paper's x86 pipeline (16 virtual CPUs, 4 KiB blocks,
  //    reduce 16:1, offset 64:1) under the balanced dispatch policy, with
  //    the baseline speculation settings: speculate from the first prefix
  //    histogram, verify every 8th, tolerate 1% compression-size error.
  pipeline::RunConfig config =
      pipeline::RunConfig::x86_disk(kind, sre::DispatchPolicy::Balanced);

  // 2. Run on the deterministic virtual-time engine.
  const pipeline::RunResult result = pipeline::run_sim(config);

  // 3. Verify: the committed artifact must decode back to the input even
  //    though parts of it may have been produced speculatively.
  pipeline::verify_roundtrip(result);

  // Compare with the non-speculative baseline.
  config.policy = sre::DispatchPolicy::NonSpeculative;
  const pipeline::RunResult baseline = pipeline::run_sim(config);

  std::printf("input            : %s, %zu bytes in %zu blocks\n",
              wl::to_string(kind).c_str(), result.input.size(),
              result.trace.size());
  std::printf("compressed       : %zu bytes (%.1f%% of input)\n",
              result.container.size(),
              100.0 * static_cast<double>(result.container.size()) /
                  static_cast<double>(result.input.size()));
  std::printf("round trip       : OK\n");
  std::printf("speculation      : committed=%s rollbacks=%llu wasted=%llu\n",
              result.spec_committed ? "yes" : "no",
              static_cast<unsigned long long>(result.rollbacks),
              static_cast<unsigned long long>(result.trace.wasted_encodes()));
  std::printf("size vs optimal  : +%.2f%%\n",
              pipeline::size_overhead_vs_optimal(result) * 100.0);
  std::printf("avg latency      : %.0f us (non-speculative: %.0f us, %+.1f%%)\n",
              result.avg_latency_us(), baseline.avg_latency_us(),
              (result.avg_latency_us() - baseline.avg_latency_us()) /
                  baseline.avg_latency_us() * 100.0);
  std::printf("completion time  : %llu us (non-speculative: %llu us)\n",
              static_cast<unsigned long long>(result.makespan_us),
              static_cast<unsigned long long>(baseline.makespan_us));
  std::printf("counters         : %s\n",
              stats::to_string(result.counters).c_str());
  return 0;
}
