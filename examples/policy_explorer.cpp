// Policy explorer: a small CLI over the full scenario grid, for poking at
// the design space beyond the paper's figures.
//
//   $ ./policy_explorer --file pdf --platform cell --io disk \
//                       --policy aggressive --step 4 --verify full --tol 0.02
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pipeline/driver.h"
#include "stats/ascii_plot.h"

namespace {

const char* kUsage = R"(usage: policy_explorer [options]
  --file txt|bmp|pdf          workload              (default txt)
  --platform x86|cell         machine model         (default x86)
  --io disk|socket            arrival model         (default disk)
  --policy none|conservative|aggressive|balanced    (default balanced)
  --step N                    speculation step size (default 1)
  --verify everyN|optimistic|full                   (default every8)
  --tol F                     tolerance fraction    (default 0.01)
  --cpus N                    simulated CPUs        (default 16)
  --bytes N                   input size in bytes   (default: paper size)
  --input PATH                compress a real file instead of a synthetic one
)";

struct Args {
  pipeline::RunConfig cfg =
      pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                    sre::DispatchPolicy::Balanced);
  std::string file = "txt";
  std::string platform = "x86";
  std::string io = "disk";
};

bool parse(int argc, char** argv, Args& out) {
  std::string policy = "balanced";
  std::string verify = "every8";
  std::uint32_t step = 1;
  double tol = 0.01;
  unsigned cpus = 16;
  std::size_t bytes = 0;
  std::string input_path;

  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) return false;
    const std::string key = argv[i];
    const std::string val = argv[i + 1];
    if (key == "--file") out.file = val;
    else if (key == "--platform") out.platform = val;
    else if (key == "--io") out.io = val;
    else if (key == "--policy") policy = val;
    else if (key == "--step") step = static_cast<std::uint32_t>(std::stoul(val));
    else if (key == "--verify") verify = val;
    else if (key == "--tol") tol = std::stod(val);
    else if (key == "--cpus") cpus = static_cast<unsigned>(std::stoul(val));
    else if (key == "--bytes") bytes = std::stoull(val);
    else if (key == "--input") input_path = val;
    else return false;
  }

  wl::FileKind kind = wl::FileKind::Txt;
  if (out.file == "bmp") kind = wl::FileKind::Bmp;
  else if (out.file == "pdf") kind = wl::FileKind::Pdf;
  else if (out.file != "txt") return false;

  sre::DispatchPolicy pol = sre::DispatchPolicy::Balanced;
  if (policy == "none") pol = sre::DispatchPolicy::NonSpeculative;
  else if (policy == "conservative") pol = sre::DispatchPolicy::Conservative;
  else if (policy == "aggressive") pol = sre::DispatchPolicy::Aggressive;
  else if (policy != "balanced") return false;

  const bool cell = out.platform == "cell";
  if (!cell && out.platform != "x86") return false;
  const bool socket = out.io == "socket";
  if (!socket && out.io != "disk") return false;

  if (cell) {
    out.cfg = socket ? pipeline::RunConfig::cell_socket(kind, pol)
                     : pipeline::RunConfig::cell_disk(kind, pol);
    out.cfg.platform = sim::PlatformConfig::cell(cpus);
  } else {
    out.cfg = socket ? pipeline::RunConfig::x86_socket(kind, pol)
                     : pipeline::RunConfig::x86_disk(kind, pol);
    out.cfg.platform = sim::PlatformConfig::x86(cpus);
  }

  out.cfg.spec.step_size = step;
  out.cfg.spec.tolerance = tol;
  out.cfg.bytes = bytes;
  out.cfg.input_path = input_path;
  if (verify == "optimistic") {
    out.cfg.spec.verify = tvs::VerificationPolicy::optimistic();
  } else if (verify == "full") {
    out.cfg.spec.verify = tvs::VerificationPolicy::full();
  } else if (verify.rfind("every", 0) == 0) {
    out.cfg.spec.verify = tvs::VerificationPolicy::every_kth(
        static_cast<std::uint32_t>(std::stoul(verify.substr(5))));
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::printf("scenario: %s\n", args.cfg.label().c_str());
  const auto result = pipeline::run_sim(args.cfg);
  pipeline::verify_roundtrip(result);

  const auto latencies = result.trace.latencies();
  const auto summary = result.latency_summary();
  std::printf("\nlatency   : %s\n", summary.to_string().c_str());
  std::printf("runtime   : %llu us\n",
              static_cast<unsigned long long>(result.makespan_us));
  std::printf("specul.   : committed=%s rollbacks=%llu wasted_encodes=%llu "
              "buffered_drops=%zu\n",
              result.spec_committed ? "yes" : "no",
              static_cast<unsigned long long>(result.rollbacks),
              static_cast<unsigned long long>(result.trace.wasted_encodes()),
              result.wait_discarded);
  std::printf("dispatch  : natural=%llu speculative=%llu\n",
              static_cast<unsigned long long>(result.natural_dispatches),
              static_cast<unsigned long long>(result.spec_dispatches));
  std::printf("size      : %+.2f%% vs optimal\n",
              pipeline::size_overhead_vs_optimal(result) * 100.0);
  std::printf("\nlatency per element:\n%s\n",
              stats::sparkline(latencies).c_str());
  std::printf("round trip: OK\n");
  return 0;
}
