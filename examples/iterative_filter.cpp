// The paper's Fig. 1 scenario: an iterative solver computes FIR filter
// coefficients; a stream of data waits to be filtered. Value speculation
// adopts an early iterate, starts filtering immediately, and validates the
// guess against later iterates with a relative-L2 tolerance.
//
//   $ ./iterative_filter [tolerance]
#include <cstdio>
#include <cstdlib>

#include "filter/filter_pipeline.h"
#include "filter/fir.h"
#include "filter/iterative_design.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

int main(int argc, char** argv) {
  const double tolerance = argc > 1 ? std::atof(argv[1]) : 0.25;

  // A noisy measurement of a clean signal; the solver designs the Wiener
  // denoising filter from their statistics.
  const auto clean = filt::make_signal(64 * 1024, 2024, 0.0);
  const auto noisy = filt::make_signal(64 * 1024, 2024, 0.8);

  filt::FilterPipelineConfig cfg;
  cfg.taps = 16;
  cfg.iterations = 14;
  cfg.block_samples = 4096;
  cfg.spec.tolerance = tolerance;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(3);

  // Show what the solver's convergence looks like — this is the curve the
  // tolerance cuts through.
  const auto prob = filt::estimate_problem(noisy, clean, cfg.taps);
  const auto profile = filt::convergence_profile(prob, cfg.iterations);
  std::printf("solver convergence (rel-L2 distance to final iterate):\n  ");
  for (double p : profile) std::printf("%.3f ", p);
  std::printf("\nspeculation tolerance: %.3f\n\n", tolerance);

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    filt::FilterPipeline pl(rt, noisy, clean, cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    std::printf("%-12s makespan=%8llu us  avg block latency=%8.0f us  "
                "rollbacks=%llu  committed=%s\n",
                speculation ? "speculative" : "natural",
                static_cast<unsigned long long>(ex.makespan_us()),
                [&pl] {
                  double sum = 0.0;
                  for (auto l : pl.trace().latencies()) {
                    sum += static_cast<double>(l);
                  }
                  return sum / static_cast<double>(pl.trace().size());
                }(),
                static_cast<unsigned long long>(pl.rollbacks()),
                pl.speculation_committed() ? "yes" : "no");
    return pl.output();
  };

  const auto natural = run(false);
  const auto speculative = run(true);

  // How different is the committed (possibly early-iterate) filter output
  // from the fully converged one?
  std::printf("\noutput deviation (speculative vs fully converged): "
              "rel-L2 = %.4f\n",
              filt::rel_l2_diff(speculative, natural));
  std::printf("(raise/lower the tolerance argument to trade accuracy for "
              "latency — the paper's central knob)\n");
  return 0;
}
