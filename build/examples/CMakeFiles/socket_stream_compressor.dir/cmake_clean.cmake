file(REMOVE_RECURSE
  "CMakeFiles/socket_stream_compressor.dir/socket_stream_compressor.cpp.o"
  "CMakeFiles/socket_stream_compressor.dir/socket_stream_compressor.cpp.o.d"
  "socket_stream_compressor"
  "socket_stream_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_stream_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
