# Empty dependencies file for socket_stream_compressor.
# This may be replaced when dependencies are built.
