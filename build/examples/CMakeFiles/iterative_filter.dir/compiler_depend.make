# Empty compiler generated dependencies file for iterative_filter.
# This may be replaced when dependencies are built.
