file(REMOVE_RECURSE
  "CMakeFiles/iterative_filter.dir/iterative_filter.cpp.o"
  "CMakeFiles/iterative_filter.dir/iterative_filter.cpp.o.d"
  "iterative_filter"
  "iterative_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
