file(REMOVE_RECURSE
  "libtvs_huffman.a"
)
