
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/huffman/bitio.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/bitio.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/bitio.cpp.o.d"
  "/root/repo/src/huffman/canonical.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/canonical.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/canonical.cpp.o.d"
  "/root/repo/src/huffman/decoder.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/decoder.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/decoder.cpp.o.d"
  "/root/repo/src/huffman/encoder.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/encoder.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/encoder.cpp.o.d"
  "/root/repo/src/huffman/fast_decoder.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/fast_decoder.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/fast_decoder.cpp.o.d"
  "/root/repo/src/huffman/histogram.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/histogram.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/histogram.cpp.o.d"
  "/root/repo/src/huffman/length_limited.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/length_limited.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/length_limited.cpp.o.d"
  "/root/repo/src/huffman/offsets.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/offsets.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/offsets.cpp.o.d"
  "/root/repo/src/huffman/stream_format.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/stream_format.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/stream_format.cpp.o.d"
  "/root/repo/src/huffman/tree.cpp" "src/huffman/CMakeFiles/tvs_huffman.dir/tree.cpp.o" "gcc" "src/huffman/CMakeFiles/tvs_huffman.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
