file(REMOVE_RECURSE
  "CMakeFiles/tvs_huffman.dir/bitio.cpp.o"
  "CMakeFiles/tvs_huffman.dir/bitio.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/canonical.cpp.o"
  "CMakeFiles/tvs_huffman.dir/canonical.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/decoder.cpp.o"
  "CMakeFiles/tvs_huffman.dir/decoder.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/encoder.cpp.o"
  "CMakeFiles/tvs_huffman.dir/encoder.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/fast_decoder.cpp.o"
  "CMakeFiles/tvs_huffman.dir/fast_decoder.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/histogram.cpp.o"
  "CMakeFiles/tvs_huffman.dir/histogram.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/length_limited.cpp.o"
  "CMakeFiles/tvs_huffman.dir/length_limited.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/offsets.cpp.o"
  "CMakeFiles/tvs_huffman.dir/offsets.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/stream_format.cpp.o"
  "CMakeFiles/tvs_huffman.dir/stream_format.cpp.o.d"
  "CMakeFiles/tvs_huffman.dir/tree.cpp.o"
  "CMakeFiles/tvs_huffman.dir/tree.cpp.o.d"
  "libtvs_huffman.a"
  "libtvs_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
