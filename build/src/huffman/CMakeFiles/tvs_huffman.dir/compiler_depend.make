# Empty compiler generated dependencies file for tvs_huffman.
# This may be replaced when dependencies are built.
