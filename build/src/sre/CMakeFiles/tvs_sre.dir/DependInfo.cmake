
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sre/ready_pool.cpp" "src/sre/CMakeFiles/tvs_sre.dir/ready_pool.cpp.o" "gcc" "src/sre/CMakeFiles/tvs_sre.dir/ready_pool.cpp.o.d"
  "/root/repo/src/sre/runtime.cpp" "src/sre/CMakeFiles/tvs_sre.dir/runtime.cpp.o" "gcc" "src/sre/CMakeFiles/tvs_sre.dir/runtime.cpp.o.d"
  "/root/repo/src/sre/supertask.cpp" "src/sre/CMakeFiles/tvs_sre.dir/supertask.cpp.o" "gcc" "src/sre/CMakeFiles/tvs_sre.dir/supertask.cpp.o.d"
  "/root/repo/src/sre/threaded_executor.cpp" "src/sre/CMakeFiles/tvs_sre.dir/threaded_executor.cpp.o" "gcc" "src/sre/CMakeFiles/tvs_sre.dir/threaded_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
