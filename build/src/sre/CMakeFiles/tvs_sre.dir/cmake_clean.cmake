file(REMOVE_RECURSE
  "CMakeFiles/tvs_sre.dir/ready_pool.cpp.o"
  "CMakeFiles/tvs_sre.dir/ready_pool.cpp.o.d"
  "CMakeFiles/tvs_sre.dir/runtime.cpp.o"
  "CMakeFiles/tvs_sre.dir/runtime.cpp.o.d"
  "CMakeFiles/tvs_sre.dir/supertask.cpp.o"
  "CMakeFiles/tvs_sre.dir/supertask.cpp.o.d"
  "CMakeFiles/tvs_sre.dir/threaded_executor.cpp.o"
  "CMakeFiles/tvs_sre.dir/threaded_executor.cpp.o.d"
  "libtvs_sre.a"
  "libtvs_sre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_sre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
