file(REMOVE_RECURSE
  "libtvs_sre.a"
)
