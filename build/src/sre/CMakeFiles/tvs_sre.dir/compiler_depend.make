# Empty compiler generated dependencies file for tvs_sre.
# This may be replaced when dependencies are built.
