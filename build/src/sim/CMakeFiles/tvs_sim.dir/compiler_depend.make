# Empty compiler generated dependencies file for tvs_sim.
# This may be replaced when dependencies are built.
