file(REMOVE_RECURSE
  "CMakeFiles/tvs_sim.dir/cost_model.cpp.o"
  "CMakeFiles/tvs_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/tvs_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tvs_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tvs_sim.dir/platform.cpp.o"
  "CMakeFiles/tvs_sim.dir/platform.cpp.o.d"
  "CMakeFiles/tvs_sim.dir/sim_executor.cpp.o"
  "CMakeFiles/tvs_sim.dir/sim_executor.cpp.o.d"
  "libtvs_sim.a"
  "libtvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
