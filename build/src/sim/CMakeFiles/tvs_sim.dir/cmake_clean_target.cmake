file(REMOVE_RECURSE
  "libtvs_sim.a"
)
