# Empty compiler generated dependencies file for tvs_pipeline.
# This may be replaced when dependencies are built.
