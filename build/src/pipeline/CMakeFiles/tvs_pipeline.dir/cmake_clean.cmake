file(REMOVE_RECURSE
  "CMakeFiles/tvs_pipeline.dir/driver.cpp.o"
  "CMakeFiles/tvs_pipeline.dir/driver.cpp.o.d"
  "CMakeFiles/tvs_pipeline.dir/huffman_pipeline.cpp.o"
  "CMakeFiles/tvs_pipeline.dir/huffman_pipeline.cpp.o.d"
  "CMakeFiles/tvs_pipeline.dir/run_config.cpp.o"
  "CMakeFiles/tvs_pipeline.dir/run_config.cpp.o.d"
  "libtvs_pipeline.a"
  "libtvs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
