file(REMOVE_RECURSE
  "libtvs_pipeline.a"
)
