# CMake generated Testfile for 
# Source directory: /root/repo/src/filter
# Build directory: /root/repo/build/src/filter
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
