file(REMOVE_RECURSE
  "CMakeFiles/tvs_filter.dir/filter_pipeline.cpp.o"
  "CMakeFiles/tvs_filter.dir/filter_pipeline.cpp.o.d"
  "CMakeFiles/tvs_filter.dir/fir.cpp.o"
  "CMakeFiles/tvs_filter.dir/fir.cpp.o.d"
  "CMakeFiles/tvs_filter.dir/iterative_design.cpp.o"
  "CMakeFiles/tvs_filter.dir/iterative_design.cpp.o.d"
  "libtvs_filter.a"
  "libtvs_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
