# Empty compiler generated dependencies file for tvs_filter.
# This may be replaced when dependencies are built.
