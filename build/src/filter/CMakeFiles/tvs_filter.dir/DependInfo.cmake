
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filter/filter_pipeline.cpp" "src/filter/CMakeFiles/tvs_filter.dir/filter_pipeline.cpp.o" "gcc" "src/filter/CMakeFiles/tvs_filter.dir/filter_pipeline.cpp.o.d"
  "/root/repo/src/filter/fir.cpp" "src/filter/CMakeFiles/tvs_filter.dir/fir.cpp.o" "gcc" "src/filter/CMakeFiles/tvs_filter.dir/fir.cpp.o.d"
  "/root/repo/src/filter/iterative_design.cpp" "src/filter/CMakeFiles/tvs_filter.dir/iterative_design.cpp.o" "gcc" "src/filter/CMakeFiles/tvs_filter.dir/iterative_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sre/CMakeFiles/tvs_sre.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tvs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
