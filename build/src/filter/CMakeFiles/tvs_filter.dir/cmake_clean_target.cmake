file(REMOVE_RECURSE
  "libtvs_filter.a"
)
