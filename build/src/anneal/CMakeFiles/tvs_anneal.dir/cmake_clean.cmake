file(REMOVE_RECURSE
  "CMakeFiles/tvs_anneal.dir/anneal_pipeline.cpp.o"
  "CMakeFiles/tvs_anneal.dir/anneal_pipeline.cpp.o.d"
  "CMakeFiles/tvs_anneal.dir/tsp.cpp.o"
  "CMakeFiles/tvs_anneal.dir/tsp.cpp.o.d"
  "libtvs_anneal.a"
  "libtvs_anneal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
