file(REMOVE_RECURSE
  "libtvs_anneal.a"
)
