# Empty compiler generated dependencies file for tvs_anneal.
# This may be replaced when dependencies are built.
