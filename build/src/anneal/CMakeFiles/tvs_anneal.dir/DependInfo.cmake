
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anneal/anneal_pipeline.cpp" "src/anneal/CMakeFiles/tvs_anneal.dir/anneal_pipeline.cpp.o" "gcc" "src/anneal/CMakeFiles/tvs_anneal.dir/anneal_pipeline.cpp.o.d"
  "/root/repo/src/anneal/tsp.cpp" "src/anneal/CMakeFiles/tvs_anneal.dir/tsp.cpp.o" "gcc" "src/anneal/CMakeFiles/tvs_anneal.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sre/CMakeFiles/tvs_sre.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tvs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
