# Empty compiler generated dependencies file for tvs_kmeans.
# This may be replaced when dependencies are built.
