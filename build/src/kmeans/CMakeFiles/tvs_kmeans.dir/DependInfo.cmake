
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmeans/kmeans.cpp" "src/kmeans/CMakeFiles/tvs_kmeans.dir/kmeans.cpp.o" "gcc" "src/kmeans/CMakeFiles/tvs_kmeans.dir/kmeans.cpp.o.d"
  "/root/repo/src/kmeans/kmeans_pipeline.cpp" "src/kmeans/CMakeFiles/tvs_kmeans.dir/kmeans_pipeline.cpp.o" "gcc" "src/kmeans/CMakeFiles/tvs_kmeans.dir/kmeans_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sre/CMakeFiles/tvs_sre.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tvs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
