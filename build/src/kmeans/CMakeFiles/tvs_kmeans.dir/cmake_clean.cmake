file(REMOVE_RECURSE
  "CMakeFiles/tvs_kmeans.dir/kmeans.cpp.o"
  "CMakeFiles/tvs_kmeans.dir/kmeans.cpp.o.d"
  "CMakeFiles/tvs_kmeans.dir/kmeans_pipeline.cpp.o"
  "CMakeFiles/tvs_kmeans.dir/kmeans_pipeline.cpp.o.d"
  "libtvs_kmeans.a"
  "libtvs_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
