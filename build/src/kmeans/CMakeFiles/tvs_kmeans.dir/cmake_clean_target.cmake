file(REMOVE_RECURSE
  "libtvs_kmeans.a"
)
