file(REMOVE_RECURSE
  "libtvs_trace.a"
)
