# Empty dependencies file for tvs_trace.
# This may be replaced when dependencies are built.
