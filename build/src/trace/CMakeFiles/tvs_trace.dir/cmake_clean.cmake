file(REMOVE_RECURSE
  "CMakeFiles/tvs_trace.dir/exporters.cpp.o"
  "CMakeFiles/tvs_trace.dir/exporters.cpp.o.d"
  "CMakeFiles/tvs_trace.dir/recorder.cpp.o"
  "CMakeFiles/tvs_trace.dir/recorder.cpp.o.d"
  "libtvs_trace.a"
  "libtvs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
