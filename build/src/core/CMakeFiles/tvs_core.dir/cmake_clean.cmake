file(REMOVE_RECURSE
  "CMakeFiles/tvs_core.dir/config.cpp.o"
  "CMakeFiles/tvs_core.dir/config.cpp.o.d"
  "libtvs_core.a"
  "libtvs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
