file(REMOVE_RECURSE
  "libtvs_core.a"
)
