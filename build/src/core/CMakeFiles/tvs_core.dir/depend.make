# Empty dependencies file for tvs_core.
# This may be replaced when dependencies are built.
