# Empty compiler generated dependencies file for tvs_stats.
# This may be replaced when dependencies are built.
