
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ascii_plot.cpp" "src/stats/CMakeFiles/tvs_stats.dir/ascii_plot.cpp.o" "gcc" "src/stats/CMakeFiles/tvs_stats.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "src/stats/CMakeFiles/tvs_stats.dir/csv.cpp.o" "gcc" "src/stats/CMakeFiles/tvs_stats.dir/csv.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/tvs_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/tvs_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/trace.cpp" "src/stats/CMakeFiles/tvs_stats.dir/trace.cpp.o" "gcc" "src/stats/CMakeFiles/tvs_stats.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
