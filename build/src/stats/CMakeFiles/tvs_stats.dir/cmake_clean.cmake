file(REMOVE_RECURSE
  "CMakeFiles/tvs_stats.dir/ascii_plot.cpp.o"
  "CMakeFiles/tvs_stats.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/tvs_stats.dir/csv.cpp.o"
  "CMakeFiles/tvs_stats.dir/csv.cpp.o.d"
  "CMakeFiles/tvs_stats.dir/summary.cpp.o"
  "CMakeFiles/tvs_stats.dir/summary.cpp.o.d"
  "CMakeFiles/tvs_stats.dir/trace.cpp.o"
  "CMakeFiles/tvs_stats.dir/trace.cpp.o.d"
  "libtvs_stats.a"
  "libtvs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
