file(REMOVE_RECURSE
  "libtvs_stats.a"
)
