# Empty dependencies file for tvs_io.
# This may be replaced when dependencies are built.
