
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/arrival_model.cpp" "src/io/CMakeFiles/tvs_io.dir/arrival_model.cpp.o" "gcc" "src/io/CMakeFiles/tvs_io.dir/arrival_model.cpp.o.d"
  "/root/repo/src/io/block_source.cpp" "src/io/CMakeFiles/tvs_io.dir/block_source.cpp.o" "gcc" "src/io/CMakeFiles/tvs_io.dir/block_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
