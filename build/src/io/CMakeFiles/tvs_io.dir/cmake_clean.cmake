file(REMOVE_RECURSE
  "CMakeFiles/tvs_io.dir/arrival_model.cpp.o"
  "CMakeFiles/tvs_io.dir/arrival_model.cpp.o.d"
  "CMakeFiles/tvs_io.dir/block_source.cpp.o"
  "CMakeFiles/tvs_io.dir/block_source.cpp.o.d"
  "libtvs_io.a"
  "libtvs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
