file(REMOVE_RECURSE
  "libtvs_io.a"
)
