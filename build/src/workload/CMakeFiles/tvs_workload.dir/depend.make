# Empty dependencies file for tvs_workload.
# This may be replaced when dependencies are built.
