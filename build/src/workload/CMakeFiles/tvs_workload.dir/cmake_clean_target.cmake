file(REMOVE_RECURSE
  "libtvs_workload.a"
)
