file(REMOVE_RECURSE
  "CMakeFiles/tvs_workload.dir/bmp_gen.cpp.o"
  "CMakeFiles/tvs_workload.dir/bmp_gen.cpp.o.d"
  "CMakeFiles/tvs_workload.dir/corpus.cpp.o"
  "CMakeFiles/tvs_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/tvs_workload.dir/pdf_gen.cpp.o"
  "CMakeFiles/tvs_workload.dir/pdf_gen.cpp.o.d"
  "CMakeFiles/tvs_workload.dir/rng.cpp.o"
  "CMakeFiles/tvs_workload.dir/rng.cpp.o.d"
  "CMakeFiles/tvs_workload.dir/text_gen.cpp.o"
  "CMakeFiles/tvs_workload.dir/text_gen.cpp.o.d"
  "libtvs_workload.a"
  "libtvs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
