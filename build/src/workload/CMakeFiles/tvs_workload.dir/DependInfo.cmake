
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bmp_gen.cpp" "src/workload/CMakeFiles/tvs_workload.dir/bmp_gen.cpp.o" "gcc" "src/workload/CMakeFiles/tvs_workload.dir/bmp_gen.cpp.o.d"
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/tvs_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/tvs_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/pdf_gen.cpp" "src/workload/CMakeFiles/tvs_workload.dir/pdf_gen.cpp.o" "gcc" "src/workload/CMakeFiles/tvs_workload.dir/pdf_gen.cpp.o.d"
  "/root/repo/src/workload/rng.cpp" "src/workload/CMakeFiles/tvs_workload.dir/rng.cpp.o" "gcc" "src/workload/CMakeFiles/tvs_workload.dir/rng.cpp.o.d"
  "/root/repo/src/workload/text_gen.cpp" "src/workload/CMakeFiles/tvs_workload.dir/text_gen.cpp.o" "gcc" "src/workload/CMakeFiles/tvs_workload.dir/text_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
