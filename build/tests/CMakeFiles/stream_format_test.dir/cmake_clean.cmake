file(REMOVE_RECURSE
  "CMakeFiles/stream_format_test.dir/huffman/stream_format_test.cpp.o"
  "CMakeFiles/stream_format_test.dir/huffman/stream_format_test.cpp.o.d"
  "stream_format_test"
  "stream_format_test.pdb"
  "stream_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
