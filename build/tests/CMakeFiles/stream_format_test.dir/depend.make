# Empty dependencies file for stream_format_test.
# This may be replaced when dependencies are built.
