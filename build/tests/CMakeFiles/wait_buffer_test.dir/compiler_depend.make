# Empty compiler generated dependencies file for wait_buffer_test.
# This may be replaced when dependencies are built.
