file(REMOVE_RECURSE
  "CMakeFiles/wait_buffer_test.dir/core/wait_buffer_test.cpp.o"
  "CMakeFiles/wait_buffer_test.dir/core/wait_buffer_test.cpp.o.d"
  "wait_buffer_test"
  "wait_buffer_test.pdb"
  "wait_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wait_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
