# Empty dependencies file for multi_pipeline_test.
# This may be replaced when dependencies are built.
