file(REMOVE_RECURSE
  "CMakeFiles/multi_pipeline_test.dir/integration/multi_pipeline_test.cpp.o"
  "CMakeFiles/multi_pipeline_test.dir/integration/multi_pipeline_test.cpp.o.d"
  "multi_pipeline_test"
  "multi_pipeline_test.pdb"
  "multi_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
