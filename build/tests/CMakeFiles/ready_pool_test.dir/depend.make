# Empty dependencies file for ready_pool_test.
# This may be replaced when dependencies are built.
