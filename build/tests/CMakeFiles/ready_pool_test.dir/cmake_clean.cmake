file(REMOVE_RECURSE
  "CMakeFiles/ready_pool_test.dir/sre/ready_pool_test.cpp.o"
  "CMakeFiles/ready_pool_test.dir/sre/ready_pool_test.cpp.o.d"
  "ready_pool_test"
  "ready_pool_test.pdb"
  "ready_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ready_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
