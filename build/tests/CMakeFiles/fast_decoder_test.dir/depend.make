# Empty dependencies file for fast_decoder_test.
# This may be replaced when dependencies are built.
