file(REMOVE_RECURSE
  "CMakeFiles/fast_decoder_test.dir/huffman/fast_decoder_test.cpp.o"
  "CMakeFiles/fast_decoder_test.dir/huffman/fast_decoder_test.cpp.o.d"
  "fast_decoder_test"
  "fast_decoder_test.pdb"
  "fast_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
