file(REMOVE_RECURSE
  "CMakeFiles/fuzz_configs_test.dir/integration/fuzz_configs_test.cpp.o"
  "CMakeFiles/fuzz_configs_test.dir/integration/fuzz_configs_test.cpp.o.d"
  "fuzz_configs_test"
  "fuzz_configs_test.pdb"
  "fuzz_configs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_configs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
