# Empty dependencies file for fuzz_configs_test.
# This may be replaced when dependencies are built.
