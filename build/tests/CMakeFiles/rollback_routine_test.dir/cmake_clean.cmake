file(REMOVE_RECURSE
  "CMakeFiles/rollback_routine_test.dir/sre/rollback_routine_test.cpp.o"
  "CMakeFiles/rollback_routine_test.dir/sre/rollback_routine_test.cpp.o.d"
  "rollback_routine_test"
  "rollback_routine_test.pdb"
  "rollback_routine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_routine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
