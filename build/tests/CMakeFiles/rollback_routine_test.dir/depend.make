# Empty dependencies file for rollback_routine_test.
# This may be replaced when dependencies are built.
