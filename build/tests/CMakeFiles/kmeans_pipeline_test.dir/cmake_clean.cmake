file(REMOVE_RECURSE
  "CMakeFiles/kmeans_pipeline_test.dir/kmeans/kmeans_pipeline_test.cpp.o"
  "CMakeFiles/kmeans_pipeline_test.dir/kmeans/kmeans_pipeline_test.cpp.o.d"
  "kmeans_pipeline_test"
  "kmeans_pipeline_test.pdb"
  "kmeans_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
