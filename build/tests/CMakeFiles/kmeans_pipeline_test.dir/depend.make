# Empty dependencies file for kmeans_pipeline_test.
# This may be replaced when dependencies are built.
