file(REMOVE_RECURSE
  "CMakeFiles/bitio_test.dir/huffman/bitio_test.cpp.o"
  "CMakeFiles/bitio_test.dir/huffman/bitio_test.cpp.o.d"
  "bitio_test"
  "bitio_test.pdb"
  "bitio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
