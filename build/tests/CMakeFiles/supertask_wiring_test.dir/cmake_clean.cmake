file(REMOVE_RECURSE
  "CMakeFiles/supertask_wiring_test.dir/pipeline/supertask_wiring_test.cpp.o"
  "CMakeFiles/supertask_wiring_test.dir/pipeline/supertask_wiring_test.cpp.o.d"
  "supertask_wiring_test"
  "supertask_wiring_test.pdb"
  "supertask_wiring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supertask_wiring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
