# Empty dependencies file for supertask_wiring_test.
# This may be replaced when dependencies are built.
