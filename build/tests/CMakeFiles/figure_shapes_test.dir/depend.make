# Empty dependencies file for figure_shapes_test.
# This may be replaced when dependencies are built.
