file(REMOVE_RECURSE
  "CMakeFiles/figure_shapes_test.dir/integration/figure_shapes_test.cpp.o"
  "CMakeFiles/figure_shapes_test.dir/integration/figure_shapes_test.cpp.o.d"
  "figure_shapes_test"
  "figure_shapes_test.pdb"
  "figure_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
