file(REMOVE_RECURSE
  "CMakeFiles/speculator_test.dir/core/speculator_test.cpp.o"
  "CMakeFiles/speculator_test.dir/core/speculator_test.cpp.o.d"
  "speculator_test"
  "speculator_test.pdb"
  "speculator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
