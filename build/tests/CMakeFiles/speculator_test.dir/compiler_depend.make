# Empty compiler generated dependencies file for speculator_test.
# This may be replaced when dependencies are built.
