file(REMOVE_RECURSE
  "CMakeFiles/filter_pipeline_test.dir/filter/filter_pipeline_test.cpp.o"
  "CMakeFiles/filter_pipeline_test.dir/filter/filter_pipeline_test.cpp.o.d"
  "filter_pipeline_test"
  "filter_pipeline_test.pdb"
  "filter_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
