file(REMOVE_RECURSE
  "CMakeFiles/huffman_pipeline_test.dir/pipeline/huffman_pipeline_test.cpp.o"
  "CMakeFiles/huffman_pipeline_test.dir/pipeline/huffman_pipeline_test.cpp.o.d"
  "huffman_pipeline_test"
  "huffman_pipeline_test.pdb"
  "huffman_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huffman_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
