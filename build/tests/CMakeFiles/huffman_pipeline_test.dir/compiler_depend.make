# Empty compiler generated dependencies file for huffman_pipeline_test.
# This may be replaced when dependencies are built.
