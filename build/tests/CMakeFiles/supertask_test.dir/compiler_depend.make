# Empty compiler generated dependencies file for supertask_test.
# This may be replaced when dependencies are built.
