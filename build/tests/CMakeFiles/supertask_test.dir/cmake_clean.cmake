file(REMOVE_RECURSE
  "CMakeFiles/supertask_test.dir/sre/supertask_test.cpp.o"
  "CMakeFiles/supertask_test.dir/sre/supertask_test.cpp.o.d"
  "supertask_test"
  "supertask_test.pdb"
  "supertask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supertask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
