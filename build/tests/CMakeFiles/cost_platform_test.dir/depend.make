# Empty dependencies file for cost_platform_test.
# This may be replaced when dependencies are built.
