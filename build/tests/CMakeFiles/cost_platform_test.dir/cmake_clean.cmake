file(REMOVE_RECURSE
  "CMakeFiles/cost_platform_test.dir/sim/cost_platform_test.cpp.o"
  "CMakeFiles/cost_platform_test.dir/sim/cost_platform_test.cpp.o.d"
  "cost_platform_test"
  "cost_platform_test.pdb"
  "cost_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
