file(REMOVE_RECURSE
  "CMakeFiles/threaded_executor_test.dir/sre/threaded_executor_test.cpp.o"
  "CMakeFiles/threaded_executor_test.dir/sre/threaded_executor_test.cpp.o.d"
  "threaded_executor_test"
  "threaded_executor_test.pdb"
  "threaded_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
