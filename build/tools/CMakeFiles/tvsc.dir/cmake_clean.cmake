file(REMOVE_RECURSE
  "CMakeFiles/tvsc.dir/tvsc.cpp.o"
  "CMakeFiles/tvsc.dir/tvsc.cpp.o.d"
  "tvsc"
  "tvsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
