# Empty dependencies file for tvsc.
# This may be replaced when dependencies are built.
