file(REMOVE_RECURSE
  "CMakeFiles/fig5_step_size.dir/fig5_step_size.cpp.o"
  "CMakeFiles/fig5_step_size.dir/fig5_step_size.cpp.o.d"
  "fig5_step_size"
  "fig5_step_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_step_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
