# Empty dependencies file for fig5_step_size.
# This may be replaced when dependencies are built.
