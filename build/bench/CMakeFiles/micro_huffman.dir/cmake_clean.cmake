file(REMOVE_RECURSE
  "CMakeFiles/micro_huffman.dir/micro_huffman.cpp.o"
  "CMakeFiles/micro_huffman.dir/micro_huffman.cpp.o.d"
  "micro_huffman"
  "micro_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
