# Empty dependencies file for micro_huffman.
# This may be replaced when dependencies are built.
