
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_huffman.cpp" "bench/CMakeFiles/micro_huffman.dir/micro_huffman.cpp.o" "gcc" "bench/CMakeFiles/micro_huffman.dir/micro_huffman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/tvs_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/tvs_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/kmeans/CMakeFiles/tvs_kmeans.dir/DependInfo.cmake"
  "/root/repo/build/src/anneal/CMakeFiles/tvs_anneal.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tvs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tvs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sre/CMakeFiles/tvs_sre.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tvs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/tvs_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tvs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tvs_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
