# Empty compiler generated dependencies file for workload_profile.
# This may be replaced when dependencies are built.
