file(REMOVE_RECURSE
  "CMakeFiles/applications_summary.dir/applications_summary.cpp.o"
  "CMakeFiles/applications_summary.dir/applications_summary.cpp.o.d"
  "applications_summary"
  "applications_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applications_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
