# Empty compiler generated dependencies file for applications_summary.
# This may be replaced when dependencies are built.
