file(REMOVE_RECURSE
  "CMakeFiles/fig6_verification.dir/fig6_verification.cpp.o"
  "CMakeFiles/fig6_verification.dir/fig6_verification.cpp.o.d"
  "fig6_verification"
  "fig6_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
