# Empty compiler generated dependencies file for fig6_verification.
# This may be replaced when dependencies are built.
