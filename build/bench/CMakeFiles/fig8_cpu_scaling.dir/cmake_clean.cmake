file(REMOVE_RECURSE
  "CMakeFiles/fig8_cpu_scaling.dir/fig8_cpu_scaling.cpp.o"
  "CMakeFiles/fig8_cpu_scaling.dir/fig8_cpu_scaling.cpp.o.d"
  "fig8_cpu_scaling"
  "fig8_cpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
