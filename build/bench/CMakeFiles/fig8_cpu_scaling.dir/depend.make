# Empty dependencies file for fig8_cpu_scaling.
# This may be replaced when dependencies are built.
