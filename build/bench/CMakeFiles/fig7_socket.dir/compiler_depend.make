# Empty compiler generated dependencies file for fig7_socket.
# This may be replaced when dependencies are built.
