file(REMOVE_RECURSE
  "CMakeFiles/fig7_socket.dir/fig7_socket.cpp.o"
  "CMakeFiles/fig7_socket.dir/fig7_socket.cpp.o.d"
  "fig7_socket"
  "fig7_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
