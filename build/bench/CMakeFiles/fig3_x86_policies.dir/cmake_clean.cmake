file(REMOVE_RECURSE
  "CMakeFiles/fig3_x86_policies.dir/fig3_x86_policies.cpp.o"
  "CMakeFiles/fig3_x86_policies.dir/fig3_x86_policies.cpp.o.d"
  "fig3_x86_policies"
  "fig3_x86_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_x86_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
