# Empty compiler generated dependencies file for fig3_x86_policies.
# This may be replaced when dependencies are built.
