file(REMOVE_RECURSE
  "CMakeFiles/fig4_cell_policies.dir/fig4_cell_policies.cpp.o"
  "CMakeFiles/fig4_cell_policies.dir/fig4_cell_policies.cpp.o.d"
  "fig4_cell_policies"
  "fig4_cell_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cell_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
