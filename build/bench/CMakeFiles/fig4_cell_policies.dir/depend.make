# Empty dependencies file for fig4_cell_policies.
# This may be replaced when dependencies are built.
