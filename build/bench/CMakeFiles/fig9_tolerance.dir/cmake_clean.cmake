file(REMOVE_RECURSE
  "CMakeFiles/fig9_tolerance.dir/fig9_tolerance.cpp.o"
  "CMakeFiles/fig9_tolerance.dir/fig9_tolerance.cpp.o.d"
  "fig9_tolerance"
  "fig9_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
