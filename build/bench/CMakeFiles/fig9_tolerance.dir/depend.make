# Empty dependencies file for fig9_tolerance.
# This may be replaced when dependencies are built.
