// Configuration fuzz: random-but-deterministic sweeps over the whole
// configuration space. Every combination must round-trip, complete its
// trace, respect the tolerance bound, and leave the runtime clean — no
// matter how odd the block/ratio/step choices are.
#include <gtest/gtest.h>

#include "pipeline/driver.h"
#include "workload/rng.h"

namespace {

pipeline::RunConfig random_config(std::uint64_t seed) {
  wl::Rng rng(wl::splitmix64(seed));

  const wl::FileKind kinds[] = {wl::FileKind::Txt, wl::FileKind::Bmp,
                                wl::FileKind::Pdf};
  const sre::DispatchPolicy policies[] = {
      sre::DispatchPolicy::NonSpeculative, sre::DispatchPolicy::Conservative,
      sre::DispatchPolicy::Aggressive, sre::DispatchPolicy::Balanced};
  const tvs::VerificationPolicy verifies[] = {
      tvs::VerificationPolicy::every_kth(1 + static_cast<std::uint32_t>(rng.below(12))),
      tvs::VerificationPolicy::optimistic(),
      tvs::VerificationPolicy::full()};

  pipeline::RunConfig cfg;
  cfg.file = kinds[rng.below(3)];
  cfg.seed = rng.next();
  cfg.bytes = 16 * 1024 + rng.below(640) * 1024;  // 16 KiB .. 656 KiB
  cfg.policy = policies[rng.below(4)];
  cfg.priority_mode = rng.below(4) == 0 ? sre::PriorityMode::Fcfs
                                        : sre::PriorityMode::DepthFirst;
  cfg.io = rng.below(3) == 0 ? pipeline::IoMode::Socket : pipeline::IoMode::Disk;
  cfg.socket_per_block_us = 50 + rng.below(500);
  cfg.socket_jitter_us = rng.below(40);

  const bool cell = rng.below(3) == 0;
  cfg.platform = cell
                     ? sim::PlatformConfig::cell(1 + static_cast<unsigned>(rng.below(24)))
                     : sim::PlatformConfig::x86(1 + static_cast<unsigned>(rng.below(24)));
  cfg.ratios.block_size = 1024 << rng.below(3);  // 1/2/4 KiB
  cfg.ratios.reduce_ratio = std::size_t{1} << rng.below(5);   // 1..16
  cfg.ratios.offset_group = std::size_t{1} << rng.below(5);   // 1..16 (Cell-safe)

  cfg.spec.step_size = 1 + static_cast<std::uint32_t>(rng.below(20));
  cfg.spec.verify = verifies[rng.below(3)];
  cfg.spec.tolerance = static_cast<double>(rng.below(60)) / 1000.0;  // 0..5.9%
  return cfg;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigFuzz, EveryConfigurationIsCorrect) {
  const auto cfg = random_config(GetParam());
  SCOPED_TRACE(cfg.label() + " bytes=" + std::to_string(cfg.bytes) +
               " blocks=" + std::to_string(cfg.ratios.block_size) +
               " R=" + std::to_string(cfg.ratios.reduce_ratio) +
               " G=" + std::to_string(cfg.ratios.offset_group));
  const auto res = pipeline::run_sim(cfg);

  pipeline::verify_roundtrip(res);
  EXPECT_TRUE(res.trace.complete());
  const double overhead = pipeline::size_overhead_vs_optimal(res);
  EXPECT_GE(overhead, -1e-9);
  EXPECT_LT(overhead, cfg.spec.tolerance + 0.01)
      << "committed output may only be suboptimal within the tolerance";
  if (!cfg.speculation_enabled()) {
    EXPECT_EQ(res.rollbacks, 0u);
    EXPECT_FALSE(res.spec_committed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(ConfigFuzz, SimAndThreadedAgreeOnOutputValidity) {
  // Same configuration on both engines: outputs may differ in which tree
  // was committed (timing-dependent), but both must be valid encodings of
  // the same input within tolerance.
  for (std::uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    auto cfg = random_config(seed);
    cfg.bytes = std::min<std::size_t>(cfg.bytes, 256 * 1024);
    cfg.io = pipeline::IoMode::Disk;  // keep wall-clock time sane
    const auto sim_res = pipeline::run_sim(cfg);
    const auto thr_res = pipeline::run_threaded(cfg, 4, 0.02);
    pipeline::verify_roundtrip(sim_res);
    pipeline::verify_roundtrip(thr_res);
    EXPECT_EQ(sim_res.input, thr_res.input);
  }
}

}  // namespace
