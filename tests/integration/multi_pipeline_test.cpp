// Multiple independent pipelines sharing one runtime and executor: epochs,
// wait buffers and rollbacks must stay fully isolated per pipeline — the
// property that makes the SRE a *runtime*, not a single-program harness.
#include <gtest/gtest.h>

#include "huffman/stream_format.h"
#include "io/block_source.h"
#include "pipeline/driver.h"
#include "pipeline/huffman_pipeline.h"
#include "sim/sim_executor.h"
#include "sre/threaded_executor.h"
#include "workload/corpus.h"

namespace {

sio::BlockSource make_src(wl::FileKind kind, std::size_t kib,
                          std::uint64_t seed) {
  return sio::BlockSource(wl::make_corpus(kind, kib * 1024, seed), 4096,
                          std::make_shared<sio::DiskArrival>());
}

void verify(const pipeline::HuffmanPipeline& pl, const sio::BlockSource& src) {
  pl.validate_complete();
  const auto out = pl.assemble_output();
  const auto decoded = huff::decompress_buffer(out);
  ASSERT_EQ(decoded.size(), src.total_bytes());
  EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(), src.bytes().begin()));
}

TEST(MultiPipeline, ThreeStreamsShareOneSimulatedMachine) {
  // TXT commits cleanly, BMP and PDF roll back — all three interleave on
  // the same 16 CPUs under one balanced scheduler.
  auto cfg_txt = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                               sre::DispatchPolicy::Balanced);
  auto cfg_bmp = cfg_txt;
  cfg_bmp.file = wl::FileKind::Bmp;
  auto cfg_pdf = cfg_txt;
  cfg_pdf.file = wl::FileKind::Pdf;

  const auto src_txt = make_src(wl::FileKind::Txt, 1024, 1);
  const auto src_bmp = make_src(wl::FileKind::Bmp, 2048, 2);
  const auto src_pdf = make_src(wl::FileKind::Pdf, 2048, 3);

  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
  pipeline::HuffmanPipeline pl_txt(rt, src_txt, cfg_txt);
  pipeline::HuffmanPipeline pl_bmp(rt, src_bmp, cfg_bmp);
  pipeline::HuffmanPipeline pl_pdf(rt, src_pdf, cfg_pdf);

  const auto feed = [&ex](const sio::BlockSource& src,
                          pipeline::HuffmanPipeline& pl) {
    src.for_each_arrival([&ex, &pl](std::size_t i, sio::Micros at) {
      ex.schedule_arrival(at, [&pl, i](sim::Micros now) {
        pl.on_block_arrival(i, now);
      });
    });
  };
  feed(src_txt, pl_txt);
  feed(src_bmp, pl_bmp);
  feed(src_pdf, pl_pdf);
  ex.run();

  verify(pl_txt, src_txt);
  verify(pl_bmp, src_bmp);
  verify(pl_pdf, src_pdf);

  // The BMP/PDF rollbacks must not have touched the TXT pipeline.
  EXPECT_EQ(pl_txt.rollbacks(), 0u);
  EXPECT_GE(pl_bmp.rollbacks() + pl_pdf.rollbacks(), 1u);
  EXPECT_TRUE(pl_txt.speculation_committed());
  EXPECT_TRUE(rt.quiescent());
}

TEST(MultiPipeline, SharedMachineMatchesIsolatedOutputs) {
  // Byte-identical artifacts whether a stream runs alone or with neighbors:
  // scheduling interleave may differ; committed content must not (both
  // commit from the same final check in these no-rollback configurations).
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::NonSpeculative);
  cfg.bytes = 512 * 1024;
  const auto isolated = pipeline::run_sim(cfg);

  const auto src_a = make_src(wl::FileKind::Txt, 512, 42);
  const auto src_b = make_src(wl::FileKind::Pdf, 512, 7);
  sre::Runtime rt(sre::DispatchPolicy::NonSpeculative);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(16));
  pipeline::HuffmanPipeline pl_a(rt, src_a, cfg);
  auto cfg_b = cfg;
  cfg_b.file = wl::FileKind::Pdf;
  pipeline::HuffmanPipeline pl_b(rt, src_b, cfg_b);
  src_a.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl_a, i](sim::Micros now) {
      pl_a.on_block_arrival(i, now);
    });
  });
  src_b.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl_b, i](sim::Micros now) {
      pl_b.on_block_arrival(i, now);
    });
  });
  ex.run();
  pl_a.validate_complete();
  EXPECT_EQ(pl_a.assemble_output(), isolated.container);
}

TEST(MultiPipeline, TwoStreamsOnRealThreads) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  const auto src_a = make_src(wl::FileKind::Txt, 256, 5);
  const auto src_b = make_src(wl::FileKind::Bmp, 256, 6);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sre::ThreadedExecutor::Options ex_opts;
  ex_opts.workers = 8;
  ex_opts.arrival_time_scale = 0.05;
  sre::ThreadedExecutor ex(rt, ex_opts);
  pipeline::HuffmanPipeline pl_a(rt, src_a, cfg);
  auto cfg_b = cfg;
  cfg_b.file = wl::FileKind::Bmp;
  pipeline::HuffmanPipeline pl_b(rt, src_b, cfg_b);
  src_a.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl_a, i](std::uint64_t now) {
      pl_a.on_block_arrival(i, now);
    });
  });
  src_b.for_each_arrival([&](std::size_t i, sio::Micros at) {
    ex.schedule_arrival(at, [&pl_b, i](std::uint64_t now) {
      pl_b.on_block_arrival(i, now);
    });
  });
  ex.run();
  verify(pl_a, src_a);
  verify(pl_b, src_b);
}

}  // namespace
