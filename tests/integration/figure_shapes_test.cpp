// Integration: the paper's qualitative claims, asserted on full-size runs.
// These are the shapes EXPERIMENTS.md reports; if a refactor breaks one, the
// reproduction is broken even if unit tests stay green.
//
// Full-size deterministic sims run in ~0.3 s each on the virtual-time engine.
#include <gtest/gtest.h>

#include "pipeline/driver.h"

namespace {

using pipeline::RunConfig;
using pipeline::RunResult;

RunResult x86(wl::FileKind f, sre::DispatchPolicy p) {
  return pipeline::run_sim(RunConfig::x86_disk(f, p));
}

TEST(FigureShapes, Fig3TxtSpeculationBeatsNonSpec) {
  const auto base = x86(wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative);
  const auto balanced = x86(wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
  const auto aggressive = x86(wl::FileKind::Txt, sre::DispatchPolicy::Aggressive);
  const auto conservative =
      x86(wl::FileKind::Txt, sre::DispatchPolicy::Conservative);

  // No rollbacks on text; every speculative policy wins on latency.
  EXPECT_EQ(balanced.rollbacks, 0u);
  EXPECT_LT(balanced.avg_latency_us(), base.avg_latency_us() * 0.75);
  EXPECT_LT(aggressive.avg_latency_us(), base.avg_latency_us() * 0.75);
  EXPECT_LT(conservative.avg_latency_us(), base.avg_latency_us());
  // Aggressive ≤ balanced < conservative when nothing rolls back.
  EXPECT_LE(aggressive.avg_latency_us(), balanced.avg_latency_us() * 1.02);
  EXPECT_LT(balanced.avg_latency_us(), conservative.avg_latency_us());
  // Run-time speedup (paper: up to ~20 % on TXT disk).
  EXPECT_LT(balanced.makespan_us, base.makespan_us * 0.92);
}

TEST(FigureShapes, Fig3PdfRollbacksPunishAggression) {
  const auto base = x86(wl::FileKind::Pdf, sre::DispatchPolicy::NonSpeculative);
  const auto balanced = x86(wl::FileKind::Pdf, sre::DispatchPolicy::Balanced);
  const auto aggressive = x86(wl::FileKind::Pdf, sre::DispatchPolicy::Aggressive);
  const auto conservative =
      x86(wl::FileKind::Pdf, sre::DispatchPolicy::Conservative);

  EXPECT_GE(balanced.rollbacks, 1u);
  // With rollbacks, aggressive wastes the most work and has the worst tail.
  EXPECT_GT(aggressive.trace.wasted_encodes(), balanced.trace.wasted_encodes());
  EXPECT_GT(aggressive.latency_summary().max, balanced.latency_summary().max);
  // Conservative and balanced keep runtime near (or better than) non-spec.
  EXPECT_LT(conservative.makespan_us, base.makespan_us);
  EXPECT_LT(balanced.makespan_us, base.makespan_us * 1.02);
}

TEST(FigureShapes, Fig4CellConservativeDoesLittleSpeculation) {
  const auto base = pipeline::run_sim(
      RunConfig::cell_disk(wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative));
  const auto conservative = pipeline::run_sim(
      RunConfig::cell_disk(wl::FileKind::Txt, sre::DispatchPolicy::Conservative));
  const auto balanced = pipeline::run_sim(
      RunConfig::cell_disk(wl::FileKind::Txt, sre::DispatchPolicy::Balanced));

  // "Conservative speculation yields poor results, whereas the balanced
  //  policy remains efficient." — conservative within a few % of non-spec.
  EXPECT_GT(conservative.avg_latency_us(), base.avg_latency_us() * 0.9);
  EXPECT_LT(balanced.avg_latency_us(), base.avg_latency_us() * 0.8);
}

TEST(FigureShapes, Fig5StepThresholds) {
  auto with_step = [](wl::FileKind f, std::uint32_t step) {
    auto cfg = RunConfig::x86_disk(f, sre::DispatchPolicy::Balanced);
    cfg.spec.step_size = step;
    return pipeline::run_sim(cfg);
  };
  // BMP: rollbacks below step 8, none from 8 up (paper Fig. 5b).
  EXPECT_GE(with_step(wl::FileKind::Bmp, 1).rollbacks, 1u);
  EXPECT_GE(with_step(wl::FileKind::Bmp, 4).rollbacks, 1u);
  EXPECT_EQ(with_step(wl::FileKind::Bmp, 8).rollbacks, 0u);
  // PDF: rollbacks below step 16, none from 16 up (paper Fig. 5c).
  EXPECT_GE(with_step(wl::FileKind::Pdf, 8).rollbacks, 1u);
  EXPECT_EQ(with_step(wl::FileKind::Pdf, 16).rollbacks, 0u);
  // TXT: no rollbacks at any step; latency degrades as the step grows.
  const auto s1 = with_step(wl::FileKind::Txt, 1);
  const auto s32 = with_step(wl::FileKind::Txt, 32);
  EXPECT_EQ(s1.rollbacks, 0u);
  EXPECT_EQ(s32.rollbacks, 0u);
  EXPECT_LT(s1.avg_latency_us(), s32.avg_latency_us());
}

TEST(FigureShapes, Fig6OptimisticWinsCleanAndLosesDirty) {
  auto with_verify = [](wl::FileKind f, tvs::VerificationPolicy v) {
    auto cfg = RunConfig::x86_disk(f, sre::DispatchPolicy::Balanced);
    cfg.spec.verify = v;
    return pipeline::run_sim(cfg);
  };
  const auto txt_base = x86(wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative);
  const auto txt_opt =
      with_verify(wl::FileKind::Txt, tvs::VerificationPolicy::optimistic());
  const auto txt_full =
      with_verify(wl::FileKind::Txt, tvs::VerificationPolicy::full());
  // Clean input: optimistic cuts average latency hard (paper: up to 51 %).
  EXPECT_LT(txt_opt.avg_latency_us(), txt_base.avg_latency_us() * 0.6);
  // Checks are cheap: full within ~10 % of optimistic.
  EXPECT_LT(txt_full.avg_latency_us(), txt_opt.avg_latency_us() * 1.1);

  const auto pdf_base = x86(wl::FileKind::Pdf, sre::DispatchPolicy::NonSpeculative);
  const auto pdf_opt =
      with_verify(wl::FileKind::Pdf, tvs::VerificationPolicy::optimistic());
  // Dirty input: optimistic re-starts a large amount of computation.
  EXPECT_GT(pdf_opt.avg_latency_us(), pdf_base.avg_latency_us() * 1.3);
  EXPECT_GT(pdf_opt.makespan_us, pdf_base.makespan_us);
}

TEST(FigureShapes, Fig7SocketLatencyNegligibleWithoutRollbacks) {
  const auto res = pipeline::run_sim(
      RunConfig::x86_socket(wl::FileKind::Txt, sre::DispatchPolicy::Balanced));
  EXPECT_EQ(res.rollbacks, 0u);
  const auto transfer = res.trace.arrivals().back();
  EXPECT_LT(res.avg_latency_us(), static_cast<double>(transfer) * 0.01)
      << "latency should be ~negligible relative to the transfer time";
}

TEST(FigureShapes, Fig7SocketPdfShowsRollbackBurst) {
  const auto res = pipeline::run_sim(
      RunConfig::x86_socket(wl::FileKind::Pdf, sre::DispatchPolicy::Balanced));
  EXPECT_GE(res.rollbacks, 1u);
  // Early blocks wait for the corrected tree: the worst latency dwarfs the
  // median (the paper's "flat portion" burst).
  const auto s = res.latency_summary();
  EXPECT_GT(s.max, s.p50 * 10);
  pipeline::verify_roundtrip(res);
}

TEST(FigureShapes, Fig8MoreCpusLowerLatency) {
  auto with_cpus = [](unsigned n) {
    auto cfg = RunConfig::x86_socket(wl::FileKind::Txt,
                                     sre::DispatchPolicy::Balanced);
    cfg.socket_per_block_us = 250;
    cfg.socket_jitter_us = 120;
    cfg.platform = sim::PlatformConfig::x86(n);
    return pipeline::run_sim(cfg).avg_latency_us();
  };
  const double l2 = with_cpus(2);
  const double l4 = with_cpus(4);
  const double l8 = with_cpus(8);
  EXPECT_LT(l4, l2);
  EXPECT_LT(l8, l4);
}

TEST(FigureShapes, Fig9ToleranceFivePercentEliminatesRollbacks) {
  auto with_tol = [](double tol) {
    auto cfg = RunConfig::x86_disk(wl::FileKind::Pdf,
                                   sre::DispatchPolicy::Balanced);
    cfg.spec.tolerance = tol;
    return pipeline::run_sim(cfg);
  };
  const auto t1 = with_tol(0.01);
  const auto t2 = with_tol(0.02);
  const auto t5 = with_tol(0.05);
  EXPECT_GE(t1.rollbacks, 1u);
  EXPECT_GE(t2.rollbacks, 1u);
  EXPECT_EQ(t5.rollbacks, 0u);
  // 2 % detects the misprediction later than 1 % does (fewer, later checks
  // fail) — visible as at least as many wasted early encodes.
  EXPECT_LE(t2.rollbacks, t1.rollbacks);
  // 5 % commits the early tree: fastest, at a bounded compression cost.
  EXPECT_LT(t5.avg_latency_us(), t1.avg_latency_us());
  EXPECT_LT(pipeline::size_overhead_vs_optimal(t5), 0.05 + 0.005);
  EXPECT_LT(pipeline::size_overhead_vs_optimal(t1), 0.01 + 0.005);
}

TEST(FigureShapes, HeadlineLatencyReductionAtLeastForty) {
  // Paper abstract: "speculation can improve average latency by a whopping
  // 51%". Our best scenario (optimistic TXT) must show the same order.
  const auto base = x86(wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative);
  auto cfg = RunConfig::x86_disk(wl::FileKind::Txt,
                                 sre::DispatchPolicy::Aggressive);
  cfg.spec.verify = tvs::VerificationPolicy::optimistic();
  const auto best = pipeline::run_sim(cfg);
  const double reduction =
      1.0 - best.avg_latency_us() / base.avg_latency_us();
  EXPECT_GT(reduction, 0.40);
}

}  // namespace
