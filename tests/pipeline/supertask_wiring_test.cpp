// The Huffman pipeline's SuperTask hierarchy: data really flows through the
// ports, and the flagged speculation-basis port drives the tvs layer.
#include <gtest/gtest.h>

#include "io/block_source.h"
#include "pipeline/huffman_pipeline.h"
#include "sim/sim_executor.h"
#include "workload/corpus.h"

namespace {

struct Harness {
  explicit Harness(sre::DispatchPolicy policy, std::size_t kib = 512)
      : cfg(pipeline::RunConfig::x86_disk(wl::FileKind::Txt, policy)),
        src(wl::make_corpus(wl::FileKind::Txt, kib * 1024), 4096,
            std::make_shared<sio::DiskArrival>()),
        rt(policy),
        ex(rt, cfg.platform),
        pl(rt, src, cfg) {}

  void run() {
    src.for_each_arrival([this](std::size_t i, sio::Micros at) {
      ex.schedule_arrival(at, [this, i](sim::Micros now) {
        pl.on_block_arrival(i, now);
      });
    });
    ex.run();
  }

  pipeline::RunConfig cfg;
  sio::BlockSource src;
  sre::Runtime rt;
  sim::SimExecutor ex;
  pipeline::HuffmanPipeline pl;
};

TEST(SupertaskWiring, HierarchyHasTwoPasses) {
  Harness h(sre::DispatchPolicy::Balanced);
  auto& root = h.pl.root_supertask();
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.children()[0]->name(), "first-pass");
  EXPECT_EQ(root.children()[1]->name(), "second-pass");
  EXPECT_TRUE(root.children()[0]->is_speculation_basis("histogram"));
}

TEST(SupertaskWiring, NonSpecHistogramPortNotFlagged) {
  Harness h(sre::DispatchPolicy::NonSpeculative);
  EXPECT_FALSE(h.pl.root_supertask().children()[0]->is_speculation_basis(
      "histogram"));
}

TEST(SupertaskWiring, BlockCompletionsEscalateToRoot) {
  Harness h(sre::DispatchPolicy::Balanced, 256);
  // "block-done" has no subscriber on the second pass, so it must escalate
  // to the root ("eventually to its parent as it completes").
  std::size_t done = 0;
  std::size_t speculative = 0;
  h.pl.root_supertask().subscribe_value<pipeline::BlockDoneMsg>(
      "block-done",
      [&](const pipeline::BlockDoneMsg& msg, std::uint64_t) {
        ++done;
        if (msg.speculative) ++speculative;
      });
  h.run();
  h.pl.validate_complete();
  EXPECT_GE(done, h.src.n_blocks());  // every block completed at least once
  EXPECT_GT(speculative, 0u) << "TXT commits speculation, so speculative "
                                "encodes must dominate";
}

TEST(SupertaskWiring, HistogramPortFiresOncePerReduce) {
  Harness h(sre::DispatchPolicy::Balanced, 512);
  std::size_t estimates = 0;
  h.pl.root_supertask().children()[0]->subscribe(
      "histogram",
      [&estimates](const sre::SuperTask::Payload&, std::uint64_t) {
        ++estimates;
      });
  h.run();
  // 512 KiB / 4 KiB = 128 blocks, reduce ratio 16 → 8 reduces.
  EXPECT_EQ(estimates, 8u);
}

}  // namespace
