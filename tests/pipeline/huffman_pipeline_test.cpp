// End-to-end pipeline correctness across the configuration grid.
//
// The invariants (DESIGN.md §6): every run round-trips; committed
// speculative output stays within the tolerance of optimal; rollbacks leave
// no stray tasks; traces are complete.
#include <gtest/gtest.h>

#include "pipeline/driver.h"

namespace {

using pipeline::RunConfig;
using pipeline::RunResult;

RunConfig small(wl::FileKind file, sre::DispatchPolicy policy,
                std::size_t kib = 512) {
  RunConfig cfg = RunConfig::x86_disk(file, policy);
  cfg.bytes = kib * 1024;
  return cfg;
}

struct GridCase {
  wl::FileKind file;
  sre::DispatchPolicy policy;
  std::uint32_t step;
  tvs::VerifyMode verify;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const auto& p = info.param;
  std::string name = wl::to_string(p.file) + "_" + sre::to_string(p.policy) +
                     "_s" + std::to_string(p.step) + "_" +
                     tvs::to_string(p.verify);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class PipelineGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(PipelineGrid, SimRunRoundTripsAndIsComplete) {
  const auto& p = GetParam();
  RunConfig cfg = small(p.file, p.policy);
  cfg.spec.step_size = p.step;
  cfg.spec.verify = tvs::VerificationPolicy{p.verify, 8};
  const RunResult res = pipeline::run_sim(cfg);

  pipeline::verify_roundtrip(res);
  EXPECT_TRUE(res.trace.complete());
  EXPECT_EQ(res.trace.size(), cfg.bytes / 4096);

  // Committed output can be suboptimal only within tolerance (plus the
  // tiny floored-histogram overhead).
  const double overhead = pipeline::size_overhead_vs_optimal(res);
  EXPECT_GE(overhead, -1e-9);
  EXPECT_LT(overhead, cfg.spec.tolerance + 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineGrid,
    ::testing::Values(
        GridCase{wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative, 1,
                 tvs::VerifyMode::EveryKth},
        GridCase{wl::FileKind::Txt, sre::DispatchPolicy::Balanced, 1,
                 tvs::VerifyMode::EveryKth},
        GridCase{wl::FileKind::Txt, sre::DispatchPolicy::Aggressive, 1,
                 tvs::VerifyMode::Optimistic},
        GridCase{wl::FileKind::Txt, sre::DispatchPolicy::Conservative, 2,
                 tvs::VerifyMode::Full},
        GridCase{wl::FileKind::Bmp, sre::DispatchPolicy::Balanced, 1,
                 tvs::VerifyMode::EveryKth},
        GridCase{wl::FileKind::Bmp, sre::DispatchPolicy::Aggressive, 1,
                 tvs::VerifyMode::Full},
        GridCase{wl::FileKind::Bmp, sre::DispatchPolicy::Balanced, 4,
                 tvs::VerifyMode::Optimistic},
        GridCase{wl::FileKind::Pdf, sre::DispatchPolicy::Balanced, 1,
                 tvs::VerifyMode::EveryKth},
        GridCase{wl::FileKind::Pdf, sre::DispatchPolicy::Aggressive, 1,
                 tvs::VerifyMode::Full},
        GridCase{wl::FileKind::Pdf, sre::DispatchPolicy::Conservative, 1,
                 tvs::VerifyMode::Optimistic},
        GridCase{wl::FileKind::Pdf, sre::DispatchPolicy::Balanced, 8,
                 tvs::VerifyMode::EveryKth}),
    case_name);

TEST(Pipeline, NonSpecOutputIsExactlyOptimal) {
  const auto res =
      pipeline::run_sim(small(wl::FileKind::Txt, sre::DispatchPolicy::NonSpeculative));
  EXPECT_FALSE(res.spec_committed);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_NEAR(pipeline::size_overhead_vs_optimal(res), 0.0, 1e-12);
}

TEST(Pipeline, TxtCommitsSpeculationWithoutRollbacks) {
  const auto res =
      pipeline::run_sim(small(wl::FileKind::Txt, sre::DispatchPolicy::Balanced));
  EXPECT_TRUE(res.spec_committed);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.wait_discarded, 0u);
  EXPECT_GT(res.trace.speculative_commits(), 0u);
}

TEST(Pipeline, CellPlatformRespectsMemoryBudget) {
  auto cfg = pipeline::RunConfig::cell_disk(wl::FileKind::Txt,
                                            sre::DispatchPolicy::Balanced);
  cfg.bytes = 512 * 1024;
  // Must not throw: every task the builder creates fits 32 KiB.
  const auto res = pipeline::run_sim(cfg);
  pipeline::verify_roundtrip(res);
}

TEST(Pipeline, OversizedRatioViolatesCellBudget) {
  auto cfg = pipeline::RunConfig::cell_disk(wl::FileKind::Txt,
                                            sre::DispatchPolicy::Balanced);
  cfg.bytes = 512 * 1024;
  cfg.ratios.reduce_ratio = 64;  // 64 histograms = 128 KiB > 32 KiB budget
  EXPECT_THROW(pipeline::run_sim(cfg), std::logic_error);
}

TEST(Pipeline, SocketModeRoundTrips) {
  auto cfg = pipeline::RunConfig::x86_socket(wl::FileKind::Txt,
                                             sre::DispatchPolicy::Balanced);
  cfg.bytes = 256 * 1024;
  const auto res = pipeline::run_sim(cfg);
  pipeline::verify_roundtrip(res);
  // Arrivals must be strictly increasing (TCP ordering).
  const auto arrivals = res.trace.arrivals();
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LT(arrivals[i - 1], arrivals[i]);
  }
}

TEST(Pipeline, RollbackRunStillProducesValidOutput) {
  // BMP at step 1 rolls back at least once; the final artifact must still
  // decode and the trace must show re-encodes.
  auto cfg = small(wl::FileKind::Bmp, sre::DispatchPolicy::Balanced, 2048);
  const auto res = pipeline::run_sim(cfg);
  EXPECT_GE(res.rollbacks, 1u);
  EXPECT_GT(res.trace.wasted_encodes() + res.wait_discarded, 0u);
  pipeline::verify_roundtrip(res);
}

TEST(Pipeline, AbortedTasksAreAccounted) {
  auto cfg = small(wl::FileKind::Bmp, sre::DispatchPolicy::Aggressive, 2048);
  const auto res = pipeline::run_sim(cfg);
  ASSERT_GE(res.rollbacks, 1u);
  EXPECT_GT(res.counters.tasks_aborted, 0u)
      << "a rollback must destroy outstanding speculative tasks";
}

TEST(Pipeline, TinyInputsWork) {
  for (std::size_t bytes : {1ul, 4095ul, 4096ul, 4097ul, 65536ul}) {
    RunConfig cfg = small(wl::FileKind::Txt, sre::DispatchPolicy::Balanced);
    cfg.bytes = bytes;
    const auto res = pipeline::run_sim(cfg);
    pipeline::verify_roundtrip(res);
    EXPECT_EQ(res.trace.size(), (bytes + 4095) / 4096) << bytes;
  }
}

TEST(Pipeline, ThreadedEngineMatchesOutputAcrossPolicies) {
  for (auto policy : {sre::DispatchPolicy::NonSpeculative,
                      sre::DispatchPolicy::Conservative,
                      sre::DispatchPolicy::Aggressive,
                      sre::DispatchPolicy::Balanced}) {
    auto cfg = small(wl::FileKind::Txt, policy, 256);
    const auto res = pipeline::run_threaded(cfg, 4, /*time_scale=*/0.02);
    pipeline::verify_roundtrip(res);
    EXPECT_TRUE(res.trace.complete()) << sre::to_string(policy);
  }
}

TEST(Pipeline, ThreadedRollbackScenarioRoundTrips) {
  auto cfg = small(wl::FileKind::Pdf, sre::DispatchPolicy::Balanced, 2048);
  const auto res = pipeline::run_threaded(cfg, 4, /*time_scale=*/0.005);
  pipeline::verify_roundtrip(res);
}

TEST(Pipeline, DeterministicSimTraces) {
  const auto cfg = small(wl::FileKind::Pdf, sre::DispatchPolicy::Balanced, 1024);
  const auto a = pipeline::run_sim(cfg);
  const auto b = pipeline::run_sim(cfg);
  EXPECT_EQ(a.trace.latencies(), b.trace.latencies());
  EXPECT_EQ(a.container, b.container);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
}

TEST(RunResult, LatencyHelpers) {
  const auto res =
      pipeline::run_sim(small(wl::FileKind::Txt, sre::DispatchPolicy::Balanced, 128));
  const auto summary = res.latency_summary();
  EXPECT_EQ(summary.count, res.trace.size());
  EXPECT_NEAR(res.avg_latency_us(), summary.mean, 1.0);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_LE(summary.p95, summary.max);
}

}  // namespace
