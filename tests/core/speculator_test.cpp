// Speculator<V> unit tests: estimates drive epochs, checks, rollbacks,
// re-speculation, commit and the natural fallback. The runtime is driven
// manually (pop → run → finish), so every check task's timing is explicit.
#include "core/speculator.h"

#include <gtest/gtest.h>

#include <optional>

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using tvs::SpecConfig;
using tvs::Speculator;
using tvs::VerificationPolicy;

/// Records everything the speculator does to the pipeline.
struct Probe {
  struct ChainBuild {
    double guess;
    sre::Epoch epoch;
    std::uint32_t index;
  };
  std::vector<ChainBuild> chains;
  std::vector<sre::Epoch> commits;
  std::vector<sre::Epoch> rollbacks;
  std::optional<double> natural_from;
  double tolerance = 0.1;  // |guess - current| <= tolerance
};

Speculator<double>::Callbacks callbacks(Probe& probe) {
  Speculator<double>::Callbacks cb;
  cb.build_chain = [&probe](const double& g, sre::Epoch e, std::uint32_t ix) {
    probe.chains.push_back({g, e, ix});
  };
  cb.within_tolerance = [&probe](const double& g, const double& cur) {
    return std::abs(g - cur) <= probe.tolerance;
  };
  cb.on_commit = [&probe](sre::Epoch e, std::uint64_t) {
    probe.commits.push_back(e);
  };
  cb.on_rollback = [&probe](sre::Epoch e, std::uint64_t) {
    probe.rollbacks.push_back(e);
  };
  cb.build_natural = [&probe](const double& v, std::uint64_t) {
    probe.natural_from = v;
  };
  return cb;
}

/// Runs all queued (check) tasks to completion.
void drain(Runtime& rt) {
  std::uint64_t t = 1000;
  while (sre::TaskPtr task = rt.next_task()) {
    sre::TaskContext ctx{rt, *task, t};
    task->run(ctx);
    rt.on_task_finished(task, ++t);
  }
}

struct SpeculatorFixture : ::testing::Test {
  Runtime rt{DispatchPolicy::Balanced};
  Probe probe;

  Speculator<double> make(SpecConfig cfg) {
    return Speculator<double>(rt, cfg, callbacks(probe));
  }
};

TEST_F(SpeculatorFixture, RequiresAllCallbacks) {
  Speculator<double>::Callbacks cb = callbacks(probe);
  cb.on_commit = nullptr;
  EXPECT_THROW(Speculator<double>(rt, SpecConfig{}, std::move(cb)),
               std::invalid_argument);
}

TEST_F(SpeculatorFixture, SpeculatesAtFirstStepMultiple) {
  auto spec = make({.step_size = 4});
  for (std::uint32_t k = 1; k <= 3; ++k) {
    spec.on_estimate(0.1 * k, k, false, k);
    EXPECT_TRUE(probe.chains.empty());
  }
  spec.on_estimate(0.4, 4, false, 4);
  ASSERT_EQ(probe.chains.size(), 1u);
  EXPECT_DOUBLE_EQ(probe.chains[0].guess, 0.4);
  EXPECT_EQ(probe.chains[0].index, 4u);
  EXPECT_TRUE(spec.active_epoch().has_value());
}

TEST_F(SpeculatorFixture, WantsEstimateMatchesBehaviour) {
  auto spec = make({.step_size = 2, .verify = VerificationPolicy::every_kth(4)});
  EXPECT_FALSE(spec.wants_estimate(1, false));  // not a step multiple
  EXPECT_TRUE(spec.wants_estimate(2, false));   // would speculate
  spec.on_estimate(1.0, 2, false, 0);           // now active
  EXPECT_FALSE(spec.wants_estimate(3, false));  // no check at 3
  EXPECT_TRUE(spec.wants_estimate(4, false));   // check at 4
  EXPECT_TRUE(spec.wants_estimate(5, true));    // final always wanted
}

TEST_F(SpeculatorFixture, PassingChecksChangeNothing) {
  auto spec = make({.step_size = 1, .verify = VerificationPolicy::every_kth(2)});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(1.05, 2, false, 1);  // within 0.1 tolerance
  drain(rt);
  EXPECT_TRUE(probe.rollbacks.empty());
  EXPECT_TRUE(probe.commits.empty());
  EXPECT_EQ(probe.chains.size(), 1u);
  EXPECT_FALSE(spec.finished());
}

TEST_F(SpeculatorFixture, FinalPassingCheckCommits) {
  auto spec = make({.step_size = 1});
  spec.on_estimate(1.0, 1, false, 0);
  const auto epoch = spec.active_epoch();
  spec.on_estimate(1.02, 2, true, 1);
  drain(rt);
  ASSERT_EQ(probe.commits.size(), 1u);
  EXPECT_EQ(probe.commits[0], *epoch);
  EXPECT_TRUE(spec.committed());
  EXPECT_TRUE(spec.finished());
  EXPECT_FALSE(probe.natural_from.has_value());
  EXPECT_EQ(rt.counters().epochs_committed, 1u);
}

TEST_F(SpeculatorFixture, FailedCheckRollsBackAndRespeculates) {
  auto spec = make({.step_size = 1, .verify = VerificationPolicy::every_kth(2)});
  spec.on_estimate(1.0, 1, false, 0);
  const auto first_epoch = spec.active_epoch();
  spec.on_estimate(2.0, 2, false, 1);  // way outside tolerance
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_EQ(probe.rollbacks[0], *first_epoch);
  // Re-speculated immediately from the newest estimate.
  ASSERT_EQ(probe.chains.size(), 2u);
  EXPECT_DOUBLE_EQ(probe.chains[1].guess, 2.0);
  EXPECT_NE(spec.active_epoch(), first_epoch);
  EXPECT_EQ(rt.counters().rollbacks, 1u);
}

TEST_F(SpeculatorFixture, FailedFinalCheckFallsBackToNatural) {
  auto spec = make({.step_size = 1});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(9.9, 2, true, 1);
  drain(rt);
  EXPECT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_TRUE(spec.finished());
  EXPECT_FALSE(spec.committed());
  ASSERT_TRUE(probe.natural_from.has_value());
  EXPECT_DOUBLE_EQ(*probe.natural_from, 9.9);
  EXPECT_EQ(probe.chains.size(), 1u) << "no re-speculation after the final";
}

TEST_F(SpeculatorFixture, NoSpeculationMeansNaturalPathAtFinal) {
  auto spec = make({.step_size = 8});  // never reached
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(1.1, 2, true, 1);
  drain(rt);
  EXPECT_TRUE(probe.chains.empty());
  ASSERT_TRUE(probe.natural_from.has_value());
  EXPECT_DOUBLE_EQ(*probe.natural_from, 1.1);
  EXPECT_TRUE(spec.finished());
}

TEST_F(SpeculatorFixture, OptimisticSkipsIntermediateChecks) {
  auto spec =
      make({.step_size = 1, .verify = VerificationPolicy::optimistic()});
  spec.on_estimate(1.0, 1, false, 0);
  for (std::uint32_t k = 2; k < 10; ++k) {
    spec.on_estimate(5.0, k, false, k);  // wildly off, but never checked
  }
  drain(rt);
  EXPECT_TRUE(probe.rollbacks.empty());
  EXPECT_EQ(rt.counters().checks_executed, 0u);
  spec.on_estimate(1.01, 10, true, 10);
  drain(rt);
  EXPECT_EQ(rt.counters().checks_executed, 1u);
  EXPECT_TRUE(spec.committed());
}

TEST_F(SpeculatorFixture, FullChecksEveryEstimate) {
  auto spec = make({.step_size = 1, .verify = VerificationPolicy::full()});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(1.01, 2, false, 1);
  drain(rt);
  spec.on_estimate(1.02, 3, false, 2);
  drain(rt);
  EXPECT_EQ(rt.counters().checks_executed, 2u);
  EXPECT_TRUE(probe.rollbacks.empty());
}

TEST_F(SpeculatorFixture, EstimatesAfterFinishAreIgnored) {
  auto spec = make({.step_size = 1});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(1.0, 2, true, 1);
  drain(rt);
  ASSERT_TRUE(spec.finished());
  spec.on_estimate(7.0, 3, false, 2);
  drain(rt);
  EXPECT_EQ(probe.chains.size(), 1u);
  EXPECT_TRUE(probe.rollbacks.empty());
  EXPECT_FALSE(spec.wants_estimate(4, true));
}

TEST_F(SpeculatorFixture, StaleVerdictsForDeadEpochsIgnored) {
  // Two checks in flight for the same epoch (Full policy); the first one
  // fails and rolls back, the second one's verdict must not touch the new
  // epoch.
  auto spec = make({.step_size = 1, .verify = VerificationPolicy::full()});
  spec.on_estimate(1.0, 1, false, 0);
  const auto e1 = spec.active_epoch();
  spec.on_estimate(2.0, 2, false, 1);  // fails → rollback + respec
  spec.on_estimate(2.01, 3, false, 2); // queued check for e1 (still active
                                       // when spawned? — spawn order matters)
  drain(rt);
  // However the verdicts interleave, exactly one epoch is active at the end
  // and it is not e1.
  EXPECT_NE(spec.active_epoch(), e1);
  EXPECT_GE(probe.rollbacks.size(), 1u);
  EXPECT_FALSE(spec.finished());
}

TEST_F(SpeculatorFixture, AdaptiveRestartDefersAfterRollback) {
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true});
  spec.on_estimate(1.0, 1, false, 0);   // guess at estimate 1
  spec.on_estimate(9.0, 4, false, 1);   // check fails → rollback
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_EQ(probe.chains.size(), 1u) << "no immediate re-speculation";
  EXPECT_FALSE(spec.active_epoch().has_value());

  // Backoff: the failed guess saw 4 estimates, so nothing below 8 opens.
  EXPECT_FALSE(spec.wants_estimate(5, false));
  spec.on_estimate(9.1, 5, false, 2);
  spec.on_estimate(9.1, 7, false, 3);
  drain(rt);
  EXPECT_EQ(probe.chains.size(), 1u);

  EXPECT_TRUE(spec.wants_estimate(8, false));
  spec.on_estimate(9.2, 8, false, 4);
  drain(rt);
  ASSERT_EQ(probe.chains.size(), 2u);
  EXPECT_DOUBLE_EQ(probe.chains[1].guess, 9.2);

  // The doubled-prefix guess holds and commits.
  spec.on_estimate(9.25, 9, true, 5);
  drain(rt);
  EXPECT_TRUE(spec.committed());
}

TEST_F(SpeculatorFixture, AdaptiveRestartFallsBackToNaturalWhenDeferred) {
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true});
  spec.on_estimate(1.0, 2, false, 0);
  spec.on_estimate(9.0, 3, false, 1);  // rollback; defer until 6
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  // The final estimate arrives before the backoff elapses: natural path.
  spec.on_estimate(9.5, 4, true, 2);
  drain(rt);
  EXPECT_TRUE(spec.finished());
  EXPECT_FALSE(spec.committed());
  ASSERT_TRUE(probe.natural_from.has_value());
  EXPECT_DOUBLE_EQ(*probe.natural_from, 9.5);
}

TEST_F(SpeculatorFixture, AdaptiveRestartBacksOffAfterBackToBackRollbacks) {
  // Satellite regression: wants_estimate must honour the doubled deferral
  // after each consecutive rollback, not just the first one.
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(9.0, 4, false, 1);  // check fails → rollback #1, defer 8
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_FALSE(spec.wants_estimate(7, false));
  EXPECT_TRUE(spec.wants_estimate(8, false));

  spec.on_estimate(9.0, 8, false, 2);   // re-opens at the deferral boundary
  drain(rt);
  ASSERT_EQ(probe.chains.size(), 2u);
  spec.on_estimate(25.0, 9, false, 3);  // fails again → rollback #2, defer 18
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 2u);
  for (std::uint32_t k = 10; k < 18; ++k) {
    EXPECT_FALSE(spec.wants_estimate(k, false)) << "k=" << k;
    spec.on_estimate(25.0, k, false, k);
  }
  drain(rt);
  EXPECT_EQ(probe.chains.size(), 2u) << "nothing may open inside the backoff";
  EXPECT_TRUE(spec.wants_estimate(18, false))
      << "the doubled deferral boundary re-admits speculation";
  EXPECT_TRUE(spec.wants_estimate(12, true))
      << "a final estimate is always wanted, even mid-backoff";
}

TEST_F(SpeculatorFixture, EarlyRollbackStormBacksOffGeometrically) {
  // Satellite regression (torture-style): every guess is wrong, verdicts
  // land immediately. The doubled deferral must keep the number of epoch
  // opens logarithmic in the estimate count — the degenerate pre-fix
  // backoff (deferrals that failed to grow past tiny indices) re-admitted
  // speculation almost every estimate and produced a rollback storm.
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true});
  for (std::uint32_t k = 1; k <= 4096; ++k) {
    spec.on_estimate(1000.0 + k, k, false, k);
    drain(rt);
  }
  // Opens at 1, 4, 10, 22, 46, ... — geometric, ~11 for 4096 estimates.
  EXPECT_LE(probe.chains.size(), 14u)
      << "backoff must be geometric, not a rollback storm";
  EXPECT_GE(probe.chains.size(), 5u) << "backoff must still re-admit";
  EXPECT_EQ(probe.rollbacks.size(), probe.chains.size());
  // Deferrals never shrink: each open's index strictly exceeds the last.
  for (std::size_t i = 1; i < probe.chains.size(); ++i) {
    EXPECT_GT(probe.chains[i].index, probe.chains[i - 1].index);
  }
}

TEST_F(SpeculatorFixture, RestartMinDeferFloorsAdaptiveBackoff) {
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true,
                    .restart_min_defer = 16});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(9.0, 2, false, 1);  // bare doubling would defer to just 4
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  for (std::uint32_t k = 3; k < 16; ++k) {
    EXPECT_FALSE(spec.wants_estimate(k, false)) << "k=" << k;
  }
  EXPECT_TRUE(spec.wants_estimate(16, false));
}

TEST_F(SpeculatorFixture, RestartMinDeferWithoutAdaptiveDefersReopen) {
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .restart_min_defer = 8});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(9.0, 2, false, 1);  // rollback; paper behaviour would
  drain(rt);                           // re-speculate on the spot
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_EQ(probe.chains.size(), 1u) << "the floor blocks instant re-spec";
  EXPECT_FALSE(spec.wants_estimate(7, false));
  EXPECT_TRUE(spec.wants_estimate(8, false));
  spec.on_estimate(9.1, 8, false, 2);
  drain(rt);
  EXPECT_EQ(probe.chains.size(), 2u);
}

TEST_F(SpeculatorFixture, AdaptiveBackoffSaturatesAtUint32Max) {
  auto spec = make({.step_size = 1,
                    .verify = VerificationPolicy::full(),
                    .adaptive_restart = true});
  spec.on_estimate(1.0, 3'000'000'000u, false, 0);
  spec.on_estimate(9.0, 3'000'000'001u, false, 1);  // 2·latest overflows u32
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_FALSE(spec.wants_estimate(4'000'000'000u, false));
  EXPECT_TRUE(spec.wants_estimate(UINT32_MAX, false))
      << "the deferral saturates instead of wrapping to a tiny index";
}

TEST_F(SpeculatorFixture, RetuneAppliesKnobsAndPinsStructure) {
  auto spec = make({.step_size = 2, .tolerance = 0.25});
  EXPECT_TRUE(spec.wants_estimate(2, false));
  EXPECT_EQ(spec.retunes(), 0u);

  tvs::SpecConfig next;
  next.step_size = 8;
  next.tolerance = 0.9;  // structural — must NOT take
  spec.retune(next);
  EXPECT_EQ(spec.retunes(), 1u);
  EXPECT_EQ(spec.config().step_size, 8u);
  EXPECT_DOUBLE_EQ(spec.config().tolerance, 0.25)
      << "tolerance is captured by the pipeline at build time; retune pins it";
  EXPECT_FALSE(spec.wants_estimate(2, false));
  EXPECT_TRUE(spec.wants_estimate(8, false));

  spec.on_estimate(1.0, 8, false, 0);
  ASSERT_EQ(probe.chains.size(), 1u) << "callbacks survive the retune";
  EXPECT_EQ(probe.chains[0].index, 8u);
}

TEST_F(SpeculatorFixture, FailedCheckWithFinalKnownGoesNaturalNotReSpec) {
  // Satellite regression: a failing non-final check whose verdict lands
  // after the final estimate arrived must fall back to the natural path —
  // re-speculating would guess at a value that can no longer be checked.
  auto spec = make({.step_size = 1, .verify = VerificationPolicy::every_kth(2)});
  spec.on_estimate(1.0, 1, false, 0);
  const auto first_epoch = spec.active_epoch();
  spec.on_estimate(5.0, 2, false, 1);  // spawns a check that will fail
  spec.on_estimate(5.1, 3, true, 2);   // final arrives before the verdict
  drain(rt);
  ASSERT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_EQ(probe.rollbacks[0], *first_epoch);
  EXPECT_EQ(probe.chains.size(), 1u) << "no re-speculation after the final";
  ASSERT_TRUE(probe.natural_from.has_value());
  EXPECT_DOUBLE_EQ(*probe.natural_from, 5.1);
  EXPECT_TRUE(spec.finished());
  EXPECT_FALSE(spec.committed());

  // And nothing revives it afterwards.
  spec.on_estimate(7.0, 4, false, 3);
  drain(rt);
  EXPECT_EQ(probe.chains.size(), 1u);
  EXPECT_FALSE(spec.wants_estimate(5, false));
}

TEST_F(SpeculatorFixture, ConfidenceGateWithholdsEpochs) {
  auto spec = make({.step_size = 1, .confidence_gate = 0.6});
  double confidence = 0.2;
  Speculator<double>::PredictorHook hook;
  hook.confidence = [&confidence](std::uint32_t) { return confidence; };
  spec.set_predictor_hook(std::move(hook));

  EXPECT_FALSE(spec.wants_estimate(1, false));
  spec.on_estimate(1.0, 1, false, 0);
  EXPECT_TRUE(probe.chains.empty()) << "low confidence: no epoch opens";
  EXPECT_EQ(spec.gate_denials(), 1u);

  // Repeated queries for the same index count one denial.
  EXPECT_FALSE(spec.wants_estimate(1, false));
  EXPECT_EQ(spec.gate_denials(), 1u);

  confidence = 0.9;
  spec.on_estimate(1.1, 2, false, 1);
  ASSERT_EQ(probe.chains.size(), 1u) << "confident estimate opens the epoch";
  EXPECT_DOUBLE_EQ(probe.chains[0].guess, 1.1);
  EXPECT_EQ(spec.gate_denials(), 1u);
}

TEST_F(SpeculatorFixture, GateNeverBlocksTheNaturalPath) {
  auto spec = make({.step_size = 1, .confidence_gate = 0.99});
  Speculator<double>::PredictorHook hook;
  hook.confidence = [](std::uint32_t) { return 0.0; };
  spec.set_predictor_hook(std::move(hook));
  spec.on_estimate(1.0, 1, false, 0);
  EXPECT_TRUE(spec.wants_estimate(2, true)) << "the final is always wanted";
  spec.on_estimate(1.0, 2, true, 1);
  drain(rt);
  EXPECT_TRUE(probe.chains.empty());
  ASSERT_TRUE(probe.natural_from.has_value());
  EXPECT_DOUBLE_EQ(*probe.natural_from, 1.0);
  EXPECT_EQ(spec.gate_denials(), 1u);
}

TEST_F(SpeculatorFixture, RefineGuessOverridesTheRawEstimate) {
  auto spec = make({.step_size = 1});
  Speculator<double>::PredictorHook hook;
  hook.refine_guess = [](std::uint32_t index) -> std::optional<double> {
    return 100.0 + index;
  };
  spec.set_predictor_hook(std::move(hook));
  spec.on_estimate(1.0, 1, false, 0);
  ASSERT_EQ(probe.chains.size(), 1u);
  EXPECT_DOUBLE_EQ(probe.chains[0].guess, 101.0)
      << "the chain builds from the refined guess, not the raw estimate";
  // The check still judges the refined guess against real estimates.
  probe.tolerance = 1000.0;
  spec.on_estimate(2.0, 2, true, 1);
  drain(rt);
  EXPECT_TRUE(spec.committed());
}

TEST_F(SpeculatorFixture, HookWithoutGateChangesNothing) {
  auto spec = make({.step_size = 1});  // confidence_gate defaults to 0
  Speculator<double>::PredictorHook hook;
  hook.confidence = [](std::uint32_t) { return 0.0; };
  spec.set_predictor_hook(std::move(hook));
  spec.on_estimate(1.0, 1, false, 0);
  EXPECT_EQ(probe.chains.size(), 1u) << "gate 0 admits everything";
  EXPECT_EQ(spec.gate_denials(), 0u);
}

TEST_F(SpeculatorFixture, ChecksRunAtControlPriority) {
  auto spec = make({.step_size = 1});
  spec.on_estimate(1.0, 1, false, 0);
  spec.on_estimate(1.0, 8, false, 1);  // spawns a check
  auto natural = rt.make_task("n", sre::TaskClass::Natural, 0, 999, 10,
                              [](sre::TaskContext&) {});
  rt.submit(natural);
  auto first = rt.next_task();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->task_class(), sre::TaskClass::Control)
      << "check tasks dispatch before even the deepest natural task";
}

}  // namespace
