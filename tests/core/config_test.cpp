#include "core/config.h"

#include <gtest/gtest.h>

namespace {

using tvs::SpecConfig;
using tvs::VerificationPolicy;
using tvs::VerifyMode;

TEST(VerificationPolicy, EveryKthChecksMultiples) {
  const auto p = VerificationPolicy::every_kth(8);
  EXPECT_FALSE(p.should_check(1, false));
  EXPECT_FALSE(p.should_check(7, false));
  EXPECT_TRUE(p.should_check(8, false));
  EXPECT_FALSE(p.should_check(9, false));
  EXPECT_TRUE(p.should_check(16, false));
  EXPECT_TRUE(p.should_check(3, true)) << "the final estimate always checks";
}

TEST(VerificationPolicy, OptimisticOnlyChecksFinal) {
  const auto p = VerificationPolicy::optimistic();
  for (std::uint32_t k = 1; k < 100; ++k) {
    EXPECT_FALSE(p.should_check(k, false));
  }
  EXPECT_TRUE(p.should_check(100, true));
}

TEST(VerificationPolicy, FullChecksEverything) {
  const auto p = VerificationPolicy::full();
  EXPECT_TRUE(p.should_check(1, false));
  EXPECT_TRUE(p.should_check(2, false));
  EXPECT_TRUE(p.should_check(3, true));
}

TEST(SpecConfig, StepSizeGatesSpeculation) {
  SpecConfig c;
  c.step_size = 4;
  EXPECT_FALSE(c.should_speculate(1));
  EXPECT_FALSE(c.should_speculate(3));
  EXPECT_TRUE(c.should_speculate(4));
  EXPECT_FALSE(c.should_speculate(6));
  EXPECT_TRUE(c.should_speculate(8));
}

TEST(SpecConfig, ZeroStepDisablesSpeculation) {
  SpecConfig c;
  c.step_size = 0;
  EXPECT_FALSE(c.speculation_enabled());
  EXPECT_FALSE(c.should_speculate(1));
  EXPECT_FALSE(c.should_speculate(100));
}

TEST(SpecConfig, DefaultsMatchThePaperBaseline) {
  const SpecConfig c;
  EXPECT_EQ(c.step_size, 1u);
  EXPECT_EQ(c.verify.mode, VerifyMode::EveryKth);
  EXPECT_EQ(c.verify.every, 8u);  // "every eighth result of a reduce task"
  EXPECT_DOUBLE_EQ(c.tolerance, 0.01);  // "a tolerance margin of 1%"
}

TEST(SpecConfig, ToStringIsInformative) {
  SpecConfig c;
  c.step_size = 4;
  c.tolerance = 0.02;
  const auto s = c.to_string();
  EXPECT_NE(s.find("step=4"), std::string::npos);
  EXPECT_NE(s.find("2%"), std::string::npos);
  EXPECT_NE(s.find("every-kth(8)"), std::string::npos);
}

}  // namespace
