#include "core/config.h"

#include <gtest/gtest.h>

namespace {

using tvs::SpecConfig;
using tvs::VerificationPolicy;
using tvs::VerifyMode;

TEST(VerificationPolicy, EveryKthChecksMultiples) {
  const auto p = VerificationPolicy::every_kth(8);
  EXPECT_FALSE(p.should_check(1, false));
  EXPECT_FALSE(p.should_check(7, false));
  EXPECT_TRUE(p.should_check(8, false));
  EXPECT_FALSE(p.should_check(9, false));
  EXPECT_TRUE(p.should_check(16, false));
  EXPECT_TRUE(p.should_check(3, true)) << "the final estimate always checks";
}

TEST(VerificationPolicy, OptimisticOnlyChecksFinal) {
  const auto p = VerificationPolicy::optimistic();
  for (std::uint32_t k = 1; k < 100; ++k) {
    EXPECT_FALSE(p.should_check(k, false));
  }
  EXPECT_TRUE(p.should_check(100, true));
}

TEST(VerificationPolicy, FullChecksEverything) {
  const auto p = VerificationPolicy::full();
  EXPECT_TRUE(p.should_check(1, false));
  EXPECT_TRUE(p.should_check(2, false));
  EXPECT_TRUE(p.should_check(3, true));
}

TEST(SpecConfig, StepSizeGatesSpeculation) {
  SpecConfig c;
  c.step_size = 4;
  EXPECT_FALSE(c.should_speculate(1));
  EXPECT_FALSE(c.should_speculate(3));
  EXPECT_TRUE(c.should_speculate(4));
  EXPECT_FALSE(c.should_speculate(6));
  EXPECT_TRUE(c.should_speculate(8));
}

// Regression: index 0 satisfies `0 % step == 0` for every step size, so the
// old predicate speculated on an estimate stream position that does not
// exist (estimate indices are 1-based; see Speculator). Index 0 must be
// refused at every step size, while real step boundaries stay accepted.
TEST(SpecConfig, IndexZeroNeverSpeculates) {
  for (std::uint32_t step : {1u, 2u, 4u, 8u, 1000u}) {
    SpecConfig c;
    c.step_size = step;
    EXPECT_FALSE(c.should_speculate(0)) << "step=" << step;
    EXPECT_TRUE(c.should_speculate(step)) << "step=" << step;
  }
}

TEST(SpecConfig, StepBoundariesAreExact) {
  SpecConfig c;
  c.step_size = 8;
  EXPECT_FALSE(c.should_speculate(0));
  EXPECT_FALSE(c.should_speculate(7));
  EXPECT_TRUE(c.should_speculate(8));
  EXPECT_FALSE(c.should_speculate(9));
  EXPECT_FALSE(c.should_speculate(15));
  EXPECT_TRUE(c.should_speculate(16));
  // Large indices: the predicate is pure modular arithmetic, no overflow.
  EXPECT_TRUE(c.should_speculate(4'000'000'000u - (4'000'000'000u % 8)));
}

TEST(SpecConfig, StepOneAcceptsEveryPositiveIndex) {
  SpecConfig c;  // step_size == 1
  EXPECT_FALSE(c.should_speculate(0));
  EXPECT_TRUE(c.should_speculate(1));
  EXPECT_TRUE(c.should_speculate(2));
}

TEST(SpecConfig, ZeroStepDisablesSpeculation) {
  SpecConfig c;
  c.step_size = 0;
  EXPECT_FALSE(c.speculation_enabled());
  EXPECT_FALSE(c.should_speculate(1));
  EXPECT_FALSE(c.should_speculate(100));
}

TEST(SpecConfig, DefaultsMatchThePaperBaseline) {
  const SpecConfig c;
  EXPECT_EQ(c.step_size, 1u);
  EXPECT_EQ(c.verify.mode, VerifyMode::EveryKth);
  EXPECT_EQ(c.verify.every, 8u);  // "every eighth result of a reduce task"
  EXPECT_DOUBLE_EQ(c.tolerance, 0.01);  // "a tolerance margin of 1%"
}

TEST(SpecConfig, ToStringIsInformative) {
  SpecConfig c;
  c.step_size = 4;
  c.tolerance = 0.02;
  const auto s = c.to_string();
  EXPECT_NE(s.find("step=4"), std::string::npos);
  EXPECT_NE(s.find("2%"), std::string::npos);
  EXPECT_NE(s.find("every-kth(8)"), std::string::npos);
}

TEST(SpecConfig, ToStringShowsRestartTuning) {
  SpecConfig c;
  c.adaptive_restart = true;
  c.restart_min_defer = 12;
  const auto s = c.to_string();
  EXPECT_NE(s.find("adaptive"), std::string::npos);
  EXPECT_NE(s.find("defer>=12"), std::string::npos);
  EXPECT_EQ(SpecConfig{}.to_string().find("defer>="), std::string::npos);
}

}  // namespace
