#include "core/wait_buffer.h"

#include <gtest/gtest.h>

namespace {

using Buffer = tvs::WaitBuffer<int, std::string>;

struct Sunk {
  int key;
  std::string payload;
  std::uint64_t time;
};

struct BufferFixture : ::testing::Test {
  std::vector<Sunk> sunk;
  Buffer buffer{[this](const int& k, std::string&& p, std::uint64_t t) {
    sunk.push_back({k, std::move(p), t});
  }};
};

TEST_F(BufferFixture, NullSinkRejected) {
  EXPECT_THROW(Buffer(nullptr), std::invalid_argument);
}

TEST_F(BufferFixture, BuffersUntilCommit) {
  buffer.add(1, 5, "five", 10);
  buffer.add(1, 3, "three", 11);
  EXPECT_TRUE(sunk.empty());
  EXPECT_EQ(buffer.pending(1), 2u);

  buffer.commit(1, 20);
  ASSERT_EQ(sunk.size(), 2u);
  // Flush in key order.
  EXPECT_EQ(sunk[0].key, 3);
  EXPECT_EQ(sunk[1].key, 5);
  EXPECT_EQ(sunk[0].time, 20u);
  EXPECT_EQ(buffer.pending(1), 0u);
}

TEST_F(BufferFixture, PassThroughAfterCommit) {
  buffer.commit(7, 5);
  buffer.add(7, 1, "late", 9);
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].payload, "late");
  EXPECT_EQ(sunk[0].time, 9u) << "pass-through keeps the arrival time";
}

TEST_F(BufferFixture, DropDiscardsPendingAndFuture) {
  buffer.add(2, 1, "a", 1);
  buffer.add(2, 2, "b", 2);
  buffer.drop(2);
  EXPECT_TRUE(sunk.empty());
  EXPECT_EQ(buffer.discarded(), 2u);
  // A racing producer that completes after the rollback:
  buffer.add(2, 3, "c", 3);
  EXPECT_TRUE(sunk.empty());
  EXPECT_EQ(buffer.discarded(), 3u);
}

TEST_F(BufferFixture, EpochsAreIndependent) {
  buffer.add(1, 1, "e1", 1);
  buffer.add(2, 1, "e2", 1);
  buffer.drop(1);
  buffer.commit(2, 10);
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].payload, "e2");
  EXPECT_EQ(buffer.discarded(), 1u);
}

TEST_F(BufferFixture, TotalPendingAcrossEpochs) {
  buffer.add(1, 1, "a", 1);
  buffer.add(2, 1, "b", 1);
  buffer.add(2, 2, "c", 1);
  EXPECT_EQ(buffer.total_pending(), 3u);
}

TEST_F(BufferFixture, CommitEmptyEpochIsFine) {
  buffer.commit(42, 1);
  EXPECT_TRUE(sunk.empty());
  buffer.drop(43);
  EXPECT_EQ(buffer.discarded(), 0u);
}

TEST_F(BufferFixture, LastWriteWinsPerKey) {
  // Re-encodes within one epoch (shouldn't normally happen, but the map
  // semantics should be deterministic): the latest payload for a key wins.
  buffer.add(1, 9, "first", 1);
  buffer.add(1, 9, "second", 2);
  buffer.commit(1, 5);
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0].payload, "second");
}

}  // namespace
