#include "huffman/tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/corpus.h"
#include "workload/rng.h"

namespace {

using huff::CodeLengths;
using huff::Histogram;
using huff::HuffmanTree;

Histogram hist_of(std::initializer_list<std::pair<int, std::uint64_t>> pairs) {
  Histogram h;
  for (const auto& [sym, count] : pairs) {
    h.at(static_cast<std::size_t>(sym)) = count;
  }
  return h;
}

TEST(HuffmanTree, EmptyHistogramGivesEmptyTree) {
  const HuffmanTree t = HuffmanTree::build(Histogram{});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.cost(), 0u);
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    EXPECT_EQ(t.lengths()[s], 0);
  }
}

TEST(HuffmanTree, SingleSymbolGetsOneBit) {
  const HuffmanTree t = HuffmanTree::build(hist_of({{'a', 42}}));
  EXPECT_EQ(t.lengths()['a'], 1);
  EXPECT_EQ(t.cost(), 42u);
}

TEST(HuffmanTree, TwoSymbolsGetOneBitEach) {
  const HuffmanTree t = HuffmanTree::build(hist_of({{'a', 100}, {'b', 1}}));
  EXPECT_EQ(t.lengths()['a'], 1);
  EXPECT_EQ(t.lengths()['b'], 1);
}

TEST(HuffmanTree, ClassicTextbookExample) {
  // Frequencies 5,9,12,13,16,45 → known optimal cost 224 bits.
  const HuffmanTree t = HuffmanTree::build(hist_of(
      {{'a', 45}, {'b', 13}, {'c', 12}, {'d', 16}, {'e', 9}, {'f', 5}}));
  EXPECT_EQ(t.cost(), 224u);
  EXPECT_EQ(t.lengths()['a'], 1);
  // The remaining lengths depend on tie-breaks but the multiset is fixed.
  std::vector<int> lens;
  for (char c : {'b', 'c', 'd', 'e', 'f'}) {
    lens.push_back(t.lengths()[static_cast<std::size_t>(c)]);
  }
  std::sort(lens.begin(), lens.end());
  EXPECT_EQ(lens, (std::vector<int>{3, 3, 3, 4, 4}));
}

TEST(HuffmanTree, MoreFrequentSymbolsGetShorterOrEqualCodes) {
  const HuffmanTree t = HuffmanTree::build(
      hist_of({{1, 1000}, {2, 500}, {3, 100}, {4, 10}, {5, 1}}));
  EXPECT_LE(t.lengths()[1], t.lengths()[2]);
  EXPECT_LE(t.lengths()[2], t.lengths()[3]);
  EXPECT_LE(t.lengths()[3], t.lengths()[4]);
  EXPECT_LE(t.lengths()[4], t.lengths()[5]);
}

TEST(HuffmanTree, DeterministicForEqualHistograms) {
  wl::Rng rng(123);
  Histogram h;
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    h.at(s) = rng.below(1000);
  }
  const HuffmanTree a = HuffmanTree::build(h);
  const HuffmanTree b = HuffmanTree::build(h);
  EXPECT_EQ(a.lengths(), b.lengths());
  EXPECT_EQ(a.cost(), b.cost());
}

TEST(HuffmanTree, EncodedBitsEqualsCostOnOwnHistogram) {
  const Histogram h = Histogram::of(wl::make_corpus(wl::FileKind::Txt, 50000));
  const HuffmanTree t = HuffmanTree::build(h);
  EXPECT_EQ(t.encoded_bits(h), t.cost());
}

TEST(HuffmanTree, CoversDetectsMissingSymbols) {
  const HuffmanTree t = HuffmanTree::build(hist_of({{'a', 3}, {'b', 2}}));
  EXPECT_TRUE(t.covers(hist_of({{'a', 1}})));
  EXPECT_FALSE(t.covers(hist_of({{'a', 1}, {'z', 1}})));
}

class TreeOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeOptimality, WithinOneBitPerSymbolOfEntropy) {
  // Shannon bound: H ≤ huffman cost < H + 1 bit per symbol.
  wl::Rng rng(GetParam());
  Histogram h;
  const std::size_t n_syms = 2 + rng.below(254);
  for (std::size_t i = 0; i < n_syms; ++i) {
    h.at(rng.below(256)) += 1 + rng.below(5000);
  }
  const HuffmanTree t = HuffmanTree::build(h);
  const double entropy = huff::entropy_bits(h);
  const auto cost = static_cast<double>(t.cost());
  EXPECT_GE(cost + 1e-6, entropy);
  EXPECT_LT(cost, entropy + static_cast<double>(h.total()));
}

TEST_P(TreeOptimality, NoOtherLengthAssignmentBeats) {
  // Kraft-feasible perturbations of the optimal lengths cannot reduce cost:
  // spot-check by comparing against the uniform ceil(log2(n)) assignment.
  wl::Rng rng(GetParam() + 1000);
  Histogram h;
  const std::size_t n_syms = 2 + rng.below(64);
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < n_syms; ++i) {
    const std::size_t s = rng.below(256);
    if (h.at(s) == 0) used.push_back(s);
    h.at(s) += 1 + rng.below(1000);
  }
  const HuffmanTree t = HuffmanTree::build(h);

  const auto uniform_len = static_cast<std::uint8_t>(
      std::ceil(std::log2(static_cast<double>(used.size()))));
  CodeLengths uniform{};
  for (std::size_t s : used) {
    uniform[s] = std::max<std::uint8_t>(uniform_len, 1);
  }
  EXPECT_LE(t.cost(), huff::encoded_bits(uniform, h));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeOptimality,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(EntropyBits, UniformDistribution) {
  Histogram h;
  for (std::size_t s = 0; s < 256; ++s) h.at(s) = 7;
  EXPECT_NEAR(huff::entropy_bits(h), 8.0 * 256 * 7, 1e-6);
}

TEST(EntropyBits, SingleSymbolIsZero) {
  EXPECT_EQ(huff::entropy_bits(hist_of({{'x', 999}})), 0.0);
}

TEST(EncodedBitsFree, MatchesPerSymbolSum) {
  CodeLengths lens{};
  lens['a'] = 2;
  lens['b'] = 5;
  const Histogram h = hist_of({{'a', 10}, {'b', 3}});
  EXPECT_EQ(huff::encoded_bits(lens, h), 10u * 2 + 3u * 5);
}

}  // namespace
