// Encoder + decoder + offsets: block-level round trips and the parallel
// assembly property (encode blocks independently, splice at offsets, decode
// the whole stream).
#include <gtest/gtest.h>

#include "huffman/decoder.h"
#include "huffman/encoder.h"
#include "huffman/offsets.h"
#include "workload/corpus.h"
#include "workload/rng.h"

namespace {

using huff::CodeTable;
using huff::Decoder;
using huff::Histogram;

TEST(Encoder, EncodedBitCountMatchesActual) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 5000);
  const CodeTable t = CodeTable::from_histogram(Histogram::of(data));
  const auto enc = huff::encode_block(data, t);
  EXPECT_EQ(enc.bit_count, huff::encoded_bit_count(data, t));
  EXPECT_EQ(enc.bit_count, t.encoded_bits(Histogram::of(data)));
  EXPECT_EQ(enc.bits.size(), (enc.bit_count + 7) / 8);
}

TEST(Encoder, ThrowsOnUncodedSymbol) {
  Histogram h;
  h.at('a') = 1;
  h.at('b') = 1;
  const CodeTable t = CodeTable::from_histogram(h);
  const std::vector<std::uint8_t> bad = {'a', 'z'};
  EXPECT_THROW(huff::encode_block(bad, t), std::invalid_argument);
}

TEST(Encoder, EmptyBlockGivesEmptyOutput) {
  Histogram h;
  h.at('a') = 1;
  h.at('b') = 1;
  const CodeTable t = CodeTable::from_histogram(h);
  const auto enc = huff::encode_block({}, t);
  EXPECT_EQ(enc.bit_count, 0u);
  EXPECT_TRUE(enc.bits.empty());
}

TEST(Decoder, RejectsEmptyTable) {
  EXPECT_THROW(Decoder{CodeTable{}}, std::invalid_argument);
}

TEST(Decoder, RoundTripsSimpleBlock) {
  const std::vector<std::uint8_t> data = {'h', 'e', 'l', 'l', 'o'};
  const CodeTable t = CodeTable::from_histogram(Histogram::of(data));
  const auto enc = huff::encode_block(data, t);
  const Decoder d(t);
  EXPECT_EQ(d.decode(enc.bits, data.size()), data);
}

TEST(Decoder, SingleSymbolStream) {
  const std::vector<std::uint8_t> data(100, 'x');
  const CodeTable t = CodeTable::from_histogram(Histogram::of(data));
  const auto enc = huff::encode_block(data, t);
  EXPECT_EQ(enc.bit_count, 100u);  // 1-bit code
  const Decoder d(t);
  EXPECT_EQ(d.decode(enc.bits, data.size()), data);
}

TEST(Decoder, ThrowsOnTruncatedStream) {
  const std::vector<std::uint8_t> data = {'a', 'b', 'c', 'a', 'b'};
  const CodeTable t = CodeTable::from_histogram(Histogram::of(data));
  const auto enc = huff::encode_block(data, t);
  const Decoder d(t);
  EXPECT_THROW(d.decode(enc.bits, data.size() + 20), std::exception);
}

struct CodecCase {
  wl::FileKind kind;
  std::size_t bytes;
  std::uint64_t seed;
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, WholeBufferRoundTrips) {
  const auto& p = GetParam();
  const auto data = wl::make_corpus(p.kind, p.bytes, p.seed);
  const CodeTable t =
      CodeTable::from_histogram(Histogram::of(data).with_floor(1));
  const auto enc = huff::encode_block(data, t);
  const Decoder d(t);
  EXPECT_EQ(d.decode(enc.bits, data.size()), data);
}

TEST_P(CodecRoundTrip, ParallelAssemblyEqualsSerialEncoding) {
  const auto& p = GetParam();
  const auto data = wl::make_corpus(p.kind, p.bytes, p.seed);
  const std::size_t block_size = 1024;
  const std::size_t n_blocks = (data.size() + block_size - 1) / block_size;

  std::vector<Histogram> hists(n_blocks);
  std::vector<std::span<const std::uint8_t>> blocks(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    const std::size_t begin = i * block_size;
    blocks[i] = std::span(data).subspan(
        begin, std::min(block_size, data.size() - begin));
    hists[i] = Histogram::of(blocks[i]);
  }
  const CodeTable t = CodeTable::from_histogram(Histogram::merged(hists));

  // "Serial" reference: one pass over the whole buffer.
  const auto serial = huff::encode_block(data, t);

  // "Parallel": per-block encodes spliced at offset-phase positions.
  const auto offsets = huff::all_offsets(hists, t);
  std::vector<huff::EncodedBlock> encs(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    encs[i] = huff::encode_block(blocks[i], t);
    EXPECT_EQ(encs[i].bit_count, t.encoded_bits(hists[i]));
  }
  const auto assembled = huff::assemble(encs, offsets);
  EXPECT_EQ(assembled, serial.bits);

  const Decoder d(t);
  EXPECT_EQ(d.decode(assembled, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CodecRoundTrip,
    ::testing::Values(CodecCase{wl::FileKind::Txt, 10000, 1},
                      CodecCase{wl::FileKind::Txt, 65536, 2},
                      CodecCase{wl::FileKind::Bmp, 10000, 3},
                      CodecCase{wl::FileKind::Bmp, 65536, 4},
                      CodecCase{wl::FileKind::Pdf, 10000, 5},
                      CodecCase{wl::FileKind::Pdf, 65537, 6},
                      CodecCase{wl::FileKind::Txt, 1, 7},
                      CodecCase{wl::FileKind::Pdf, 1023, 8}));

TEST(Offsets, MatchActualEncodedPositions) {
  const auto data = wl::make_corpus(wl::FileKind::Pdf, 30000, 9);
  const std::size_t block_size = 777;  // deliberately unaligned
  const std::size_t n_blocks = (data.size() + block_size - 1) / block_size;
  std::vector<Histogram> hists(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    const std::size_t begin = i * block_size;
    hists[i] = Histogram::of(std::span(data).subspan(
        begin, std::min(block_size, data.size() - begin)));
  }
  const CodeTable t = CodeTable::from_histogram(Histogram::merged(hists));
  const auto offsets = huff::all_offsets(hists, t);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i < n_blocks; ++i) {
    EXPECT_EQ(offsets[i], running);
    running += t.encoded_bits(hists[i]);
  }
}

TEST(Offsets, GroupsComposeLikeWholeRange) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 40960, 10);
  const std::size_t block_size = 4096;
  std::vector<Histogram> hists(10);
  for (std::size_t i = 0; i < 10; ++i) {
    hists[i] = Histogram::of(std::span(data).subspan(i * block_size, block_size));
  }
  const CodeTable t = CodeTable::from_histogram(Histogram::merged(hists));

  const auto whole = huff::all_offsets(hists, t);

  // Groups of 3, chained through end_offset — the pipeline's Offset tasks.
  std::vector<std::uint64_t> grouped;
  std::uint64_t carry = 0;
  for (std::size_t g = 0; g * 3 < 10; ++g) {
    const std::size_t begin = g * 3;
    const std::size_t len = std::min<std::size_t>(3, 10 - begin);
    const auto group = huff::compute_offsets(
        std::span(hists).subspan(begin, len), t, carry);
    grouped.insert(grouped.end(), group.block_offsets.begin(),
                   group.block_offsets.end());
    carry = group.end_offset;
  }
  EXPECT_EQ(grouped, whole);
}

TEST(Assemble, SizeMismatchThrows) {
  std::vector<huff::EncodedBlock> blocks(2);
  std::vector<std::uint64_t> offsets(3, 0);
  EXPECT_THROW(huff::assemble(blocks, offsets), std::invalid_argument);
}

}  // namespace
