// Differential suite for the data-plane kernel dispatch contract
// (docs/data-plane.md): every tvs::simd level must produce bit-identical
// histograms and containers, and containers must round-trip. Run directly
// it sweeps all levels in-process via force(); `tools/ci.sh kernels` also
// runs it with TVS_SIMD forced through the environment under asan/ubsan.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "huffman/canonical.h"
#include "huffman/encoder.h"
#include "huffman/hist_kernels.h"
#include "huffman/histogram.h"
#include "huffman/stream_format.h"
#include "huffman/tree.h"
#include "simd/simd.h"

namespace {

using tvs::simd::Level;

/// Restores the pre-test dispatch level even on assertion failure.
struct ForceGuard {
  ~ForceGuard() { tvs::simd::clear_force(); }
};

std::vector<Level> levels_to_test() {
  std::vector<Level> out{Level::Scalar, Level::Swar};
  if (tvs::simd::detect() == Level::Avx2) out.push_back(Level::Avx2);
  return out;
}

// --- Corpora ---------------------------------------------------------------

std::vector<std::uint8_t> uniform_random(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::vector<std::uint8_t> one_symbol(std::size_t n, std::uint8_t sym) {
  return std::vector<std::uint8_t>(n, sym);
}

/// Heavily skewed: long runs of few symbols (text-like, deep codes).
std::vector<std::uint8_t> skewed(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::geometric_distribution<int> g(0.4);
  std::vector<std::uint8_t> v(n);
  std::size_t i = 0;
  while (i < n) {
    const auto sym = static_cast<std::uint8_t>(g(rng) & 0xff);
    const std::size_t run = 1 + (rng() % 64);
    for (std::size_t k = 0; k < run && i < n; ++k) v[i++] = sym;
  }
  return v;
}

std::vector<std::vector<std::uint8_t>> corpora() {
  // Sizes straddle block boundaries: empty, single byte, one byte short of
  // a block, exactly one block, several blocks plus a ragged tail.
  const std::size_t sizes[] = {0, 1, 4095, 4096, 65536 + 17};
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t n : sizes) {
    out.push_back(uniform_random(n, 0xC0FFEE));  // incompressible
    out.push_back(one_symbol(n, 'x'));           // degenerate 1-symbol
    out.push_back(skewed(n, 42));                // deep, uneven codes
  }
  return out;
}

// --- Histogram kernels -----------------------------------------------------

TEST(KernelDiff, HistogramKernelsAgreeOnAllCorpora) {
  for (const auto& data : corpora()) {
    std::uint64_t ref[256] = {};
    huff::detail::hist_scalar(data, ref);
    std::uint64_t swar[256] = {};
    huff::detail::hist_swar(data, swar);
    std::uint64_t avx[256] = {};
    huff::detail::hist_avx2(data, avx);
    for (std::size_t s = 0; s < 256; ++s) {
      ASSERT_EQ(swar[s], ref[s]) << "swar sym " << s << " n=" << data.size();
      ASSERT_EQ(avx[s], ref[s]) << "avx2 sym " << s << " n=" << data.size();
    }
  }
}

TEST(KernelDiff, KernelsAccumulateIntoNonZeroCounts) {
  const auto data = skewed(10000, 7);
  std::uint64_t ref[256] = {};
  huff::detail::hist_scalar(data, ref);
  huff::detail::hist_scalar(data, ref);  // counted twice
  std::uint64_t twice[256] = {};
  huff::detail::hist_swar(data, twice);
  huff::detail::hist_avx2(data, twice);  // swar + avx2 = counted twice
  for (std::size_t s = 0; s < 256; ++s) ASSERT_EQ(twice[s], ref[s]) << s;
}

TEST(KernelDiff, HistogramDispatchMatchesScalarAtEveryLevel) {
  const ForceGuard guard;
  for (const auto& data : corpora()) {
    tvs::simd::force(Level::Scalar);
    const huff::Histogram ref = huff::Histogram::of(data);
    for (Level lvl : levels_to_test()) {
      tvs::simd::force(lvl);
      ASSERT_EQ(huff::Histogram::of(data), ref)
          << tvs::simd::name(lvl) << " n=" << data.size();
    }
  }
}

// --- Encoder kernels -------------------------------------------------------

TEST(KernelDiff, EncodeBlockBitIdenticalAcrossLevels) {
  const ForceGuard guard;
  for (const auto& data : corpora()) {
    if (data.empty()) continue;
    const auto table = huff::CodeTable::from_histogram(
        huff::Histogram::of(data).with_floor(1));
    tvs::simd::force(Level::Scalar);
    const huff::EncodedBlock ref = huff::encode_block(data, table);
    for (Level lvl : levels_to_test()) {
      tvs::simd::force(lvl);
      const huff::EncodedBlock enc = huff::encode_block(data, table);
      ASSERT_EQ(enc.bit_count, ref.bit_count)
          << tvs::simd::name(lvl) << " n=" << data.size();
      ASSERT_TRUE(enc.bits == ref.bits)
          << tvs::simd::name(lvl) << " n=" << data.size();
    }
  }
}

TEST(KernelDiff, EncodeBlockIntoMatchesEncodeBlock) {
  const ForceGuard guard;
  for (Level lvl : levels_to_test()) {
    tvs::simd::force(lvl);
    for (const auto& data : corpora()) {
      if (data.empty()) continue;
      const huff::Histogram hist = huff::Histogram::of(data);
      const auto table = huff::CodeTable::from_histogram(hist.with_floor(1));
      const huff::EncodedBlock ref = huff::encode_block(data, table);
      auto storage = std::make_shared<std::vector<std::uint8_t>>(
          (table.encoded_bits(hist) + 7) / 8);
      const huff::EncodedBlock enc = huff::encode_block_into(
          data, table, {storage->data(), storage->size()}, storage);
      ASSERT_EQ(enc.bit_count, ref.bit_count) << tvs::simd::name(lvl);
      ASSERT_TRUE(enc.bits == ref.bits) << tvs::simd::name(lvl);
      ASSERT_EQ(enc.bits.data(), storage->data());  // wrote in place
    }
  }
}

TEST(KernelDiff, EncodeBlockIntoRejectsUndersizedOutput) {
  const ForceGuard guard;
  const auto data = uniform_random(4096, 1);
  const auto table = huff::CodeTable::from_histogram(
      huff::Histogram::of(data).with_floor(1));
  const std::uint64_t nbits = huff::encoded_bit_count(data, table);
  auto storage = std::make_shared<std::vector<std::uint8_t>>(
      (nbits + 7) / 8 - 1);  // one byte short
  for (Level lvl : levels_to_test()) {
    tvs::simd::force(lvl);
    EXPECT_THROW(huff::encode_block_into(
                     data, table, {storage->data(), storage->size()}, storage),
                 std::logic_error)
        << tvs::simd::name(lvl);
  }
}

TEST(KernelDiff, EncodeThrowsOnCodelessSymbolAtEveryLevel) {
  const ForceGuard guard;
  // Table over 'a'..'b' only; input contains 'z'.
  huff::Histogram h;
  h.at('a') = 10;
  h.at('b') = 3;
  const auto table = huff::CodeTable::from_histogram(h);
  const std::vector<std::uint8_t> bad = {'a', 'z', 'b'};
  for (Level lvl : levels_to_test()) {
    tvs::simd::force(lvl);
    EXPECT_THROW((void)huff::encode_block(bad, table), std::invalid_argument)
        << tvs::simd::name(lvl);
  }
}

// --- Whole-container differential fuzz -------------------------------------

TEST(KernelDiff, ContainersBitIdenticalAndRoundTripAcrossLevels) {
  const ForceGuard guard;
  for (const auto& data : corpora()) {
    tvs::simd::force(Level::Scalar);
    const auto ref = huff::compress_buffer(data);
    for (Level lvl : levels_to_test()) {
      tvs::simd::force(lvl);
      const auto container = huff::compress_buffer(data);
      ASSERT_EQ(container, ref)
          << tvs::simd::name(lvl) << " n=" << data.size();
      ASSERT_EQ(huff::decompress_buffer(container), data)
          << tvs::simd::name(lvl) << " n=" << data.size();
    }
  }
}

TEST(KernelDiff, RandomizedContainerFuzzAcrossLevels) {
  const ForceGuard guard;
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = rng() % 20000;
    std::vector<std::uint8_t> data;
    switch (iter % 3) {
      case 0: data = uniform_random(n, rng()); break;
      case 1: data = one_symbol(n, static_cast<std::uint8_t>(rng())); break;
      default: data = skewed(n, rng()); break;
    }
    tvs::simd::force(Level::Scalar);
    const auto ref = huff::compress_buffer(data, /*block_size=*/1024);
    for (Level lvl : levels_to_test()) {
      tvs::simd::force(lvl);
      ASSERT_EQ(huff::compress_buffer(data, 1024), ref)
          << tvs::simd::name(lvl) << " iter=" << iter << " n=" << n;
    }
    ASSERT_EQ(huff::decompress_buffer(ref), data) << "iter=" << iter;
  }
}

// --- Dispatch plumbing -----------------------------------------------------

// Must run before any other test hands parse() an unrecognized value: the
// warning fires once per process, and this test owns that first shot.
TEST(SimdProbe, WarnsOnceOnUnrecognizedValue) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(tvs::simd::parse("axv2"), tvs::simd::detect());   // typo: warns
  EXPECT_EQ(tvs::simd::parse("bogus"), tvs::simd::detect());  // silent now
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unrecognized TVS_SIMD"), std::string::npos)
      << "a typo'd TVS_SIMD must not silently become auto-detect";
  EXPECT_NE(err.find("axv2"), std::string::npos);
  EXPECT_NE(err.find("auto-detect"), std::string::npos);
  EXPECT_EQ(err.find("bogus"), std::string::npos) << "warns once per process";
}

TEST(SimdProbe, ParseHonorsTheTvsSimdGrammar) {
  EXPECT_EQ(tvs::simd::parse("0"), Level::Scalar);
  EXPECT_EQ(tvs::simd::parse("scalar"), Level::Scalar);
  EXPECT_EQ(tvs::simd::parse("1"), Level::Swar);
  EXPECT_EQ(tvs::simd::parse("swar"), Level::Swar);
  EXPECT_EQ(tvs::simd::parse("unrolled"), Level::Swar);
  // "2"/"avx2" clamps to the CPU's best; either way it never exceeds it.
  EXPECT_EQ(tvs::simd::parse("2"), tvs::simd::detect());
  EXPECT_EQ(tvs::simd::parse("avx2"), tvs::simd::detect());
  EXPECT_EQ(tvs::simd::parse("auto"), tvs::simd::detect());
  EXPECT_EQ(tvs::simd::parse(""), tvs::simd::detect());
  EXPECT_EQ(tvs::simd::parse(nullptr), tvs::simd::detect());
  EXPECT_EQ(tvs::simd::parse("bogus"), tvs::simd::detect());
}

TEST(SimdProbe, ForceOverridesAndClampsToCpuCapability) {
  const ForceGuard guard;
  tvs::simd::force(Level::Scalar);
  EXPECT_EQ(tvs::simd::active(), Level::Scalar);
  tvs::simd::force(Level::Avx2);
  EXPECT_EQ(tvs::simd::active(), tvs::simd::detect());  // clamped if no AVX2
  tvs::simd::clear_force();
}

TEST(SimdProbe, LevelNamesAreStable) {
  EXPECT_STREQ(tvs::simd::name(Level::Scalar), "scalar");
  EXPECT_STREQ(tvs::simd::name(Level::Swar), "swar");
  EXPECT_STREQ(tvs::simd::name(Level::Avx2), "avx2");
}

}  // namespace
