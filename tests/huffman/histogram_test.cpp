#include "huffman/histogram.h"

#include <gtest/gtest.h>

#include "workload/rng.h"

namespace {

using huff::Histogram;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  wl::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

TEST(Histogram, StartsEmpty) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.distinct_symbols(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, CountsEveryByte) {
  const std::vector<std::uint8_t> data = {0, 0, 1, 255, 255, 255};
  const Histogram h = Histogram::of(data);
  EXPECT_EQ(h.at(0), 2u);
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(255), 3u);
  EXPECT_EQ(h.at(7), 0u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.distinct_symbols(), 3u);
}

TEST(Histogram, CountAccumulatesAcrossCalls) {
  Histogram h;
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {3, 4};
  h.count(a);
  h.count(b);
  EXPECT_EQ(h.at(3), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, MergeAddsCounts) {
  const std::vector<std::uint8_t> a = {10, 10, 20};
  const std::vector<std::uint8_t> b = {20, 30};
  Histogram ha = Histogram::of(a);
  const Histogram hb = Histogram::of(b);
  ha.merge(hb);
  EXPECT_EQ(ha.at(10), 2u);
  EXPECT_EQ(ha.at(20), 2u);
  EXPECT_EQ(ha.at(30), 1u);
  EXPECT_EQ(ha.total(), 5u);
}

TEST(Histogram, MergeMatchesWholeBufferCount) {
  // Core property behind the Reduce tree and prefix speculation: counting
  // parts and merging equals counting the whole.
  const auto data = random_bytes(10000, 77);
  const std::size_t split = 3777;
  Histogram parts = Histogram::of(std::span(data).first(split));
  parts.merge(Histogram::of(std::span(data).subspan(split)));
  EXPECT_EQ(parts, Histogram::of(data));
}

class HistogramMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramMergeProperty, MergeIsCommutativeAndAssociative) {
  const std::uint64_t seed = GetParam();
  const Histogram a = Histogram::of(random_bytes(500, seed));
  const Histogram b = Histogram::of(random_bytes(300, seed + 1));
  const Histogram c = Histogram::of(random_bytes(700, seed + 2));

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  Histogram ab_c = ab;
  ab_c.merge(c);
  Histogram bc = b;
  bc.merge(c);
  Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramMergeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Histogram, MergedSpan) {
  std::vector<Histogram> parts;
  std::vector<std::uint8_t> all;
  for (std::uint64_t s = 0; s < 5; ++s) {
    auto bytes = random_bytes(100, s);
    parts.push_back(Histogram::of(bytes));
    all.insert(all.end(), bytes.begin(), bytes.end());
  }
  EXPECT_EQ(Histogram::merged(parts), Histogram::of(all));
}

TEST(Histogram, WithFloorRaisesOnlyLowCounts) {
  std::vector<std::uint8_t> data = {5, 5, 5, 9};
  const Histogram h = Histogram::of(data);
  const Histogram f = h.with_floor(2);
  EXPECT_EQ(f.at(5), 3u);   // already above floor
  EXPECT_EQ(f.at(9), 2u);   // raised
  EXPECT_EQ(f.at(0), 2u);   // absent symbol floored
  EXPECT_EQ(f.distinct_symbols(), huff::kSymbols);
}

TEST(Histogram, WithFloorZeroIsIdentity) {
  const Histogram h = Histogram::of(random_bytes(100, 9));
  EXPECT_EQ(h.with_floor(0), h);
}

}  // namespace
