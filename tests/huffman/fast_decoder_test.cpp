// Length-limited codes and the table-driven decoder: correctness and
// equivalence with the canonical bit-walker.
#include <gtest/gtest.h>

#include "huffman/encoder.h"
#include "huffman/fast_decoder.h"
#include "huffman/length_limited.h"
#include "huffman/stream_format.h"
#include "workload/corpus.h"
#include "workload/rng.h"

namespace {

using huff::CodeLengths;
using huff::CodeTable;
using huff::FastDecoder;
using huff::Histogram;

TEST(LengthLimited, ValidatesArguments) {
  Histogram h;
  h.at('a') = 1;
  const CodeLengths lens = huff::HuffmanTree::build(h).lengths();
  EXPECT_THROW(huff::limit_code_lengths(lens, h, 0), std::invalid_argument);
  // 256 floored symbols cannot fit in 7 bits.
  const Histogram full = h.with_floor(1);
  const CodeLengths full_lens = huff::HuffmanTree::build(full).lengths();
  EXPECT_THROW(huff::limit_code_lengths(full_lens, full, 7),
               std::invalid_argument);
  EXPECT_NO_THROW(huff::limit_code_lengths(full_lens, full, 8));
}

TEST(LengthLimited, AlreadyShortLengthsUnchangedInCost) {
  const Histogram h =
      Histogram::of(wl::make_corpus(wl::FileKind::Txt, 50000));
  const CodeLengths optimal = huff::HuffmanTree::build(h).lengths();
  const CodeLengths limited = huff::limit_code_lengths(optimal, h, 32);
  // Generous limit: cost must not get worse.
  EXPECT_LE(huff::encoded_bits(limited, h), huff::encoded_bits(optimal, h));
}

class LengthLimitSweep
    : public ::testing::TestWithParam<std::tuple<wl::FileKind, int>> {};

TEST_P(LengthLimitSweep, LimitedCodesAreValidAndNearOptimal) {
  const auto [kind, max_bits] = GetParam();
  const Histogram h =
      Histogram::of(wl::make_corpus(kind, 200000)).with_floor(1);
  const CodeLengths optimal = huff::HuffmanTree::build(h).lengths();
  const CodeLengths limited =
      huff::limit_code_lengths(optimal, h, static_cast<std::uint8_t>(max_bits));

  EXPECT_TRUE(huff::kraft_valid(limited));
  std::uint8_t max_seen = 0;
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    EXPECT_EQ(limited[s] == 0, optimal[s] == 0) << "coverage must not change";
    max_seen = std::max(max_seen, limited[s]);
  }
  EXPECT_LE(max_seen, max_bits);

  // Squeezing 256 floored symbols under a 10-bit ceiling has a real,
  // input-dependent price; what optimality guarantees is that it stays
  // bounded and can never beat unconstrained Huffman.
  const auto base = static_cast<double>(huff::encoded_bits(optimal, h));
  const auto cost = static_cast<double>(huff::encoded_bits(limited, h));
  EXPECT_GE(cost, base - 1e-9) << "cannot beat unconstrained Huffman";
  EXPECT_LT(cost, base * 1.10) << "limit " << max_bits;

  // And the limited table still round-trips real data.
  const auto table = CodeTable::from_lengths(limited);
  const auto data = wl::make_corpus(kind, 20000, 3);
  const auto enc = huff::encode_block(data, table);
  const huff::Decoder slow(table);
  EXPECT_EQ(slow.decode(enc.bits, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LengthLimitSweep,
    ::testing::Combine(::testing::Values(wl::FileKind::Txt, wl::FileKind::Bmp,
                                         wl::FileKind::Pdf),
                       ::testing::Values(10, 12, 14)));

TEST(LengthLimited, CostIsMonotoneInTheLimit) {
  // A property only optimal solutions have: loosening the constraint can
  // never increase the optimal cost. (The earlier greedy heuristic violated
  // this; package-merge must not.)
  for (wl::FileKind kind : wl::all_kinds()) {
    const Histogram h =
        Histogram::of(wl::make_corpus(kind, 150000)).with_floor(1);
    const auto unconstrained =
        huff::encoded_bits(huff::HuffmanTree::build(h).lengths(), h);
    std::uint64_t prev = ~0ULL;
    for (std::uint8_t limit : {9, 10, 11, 12, 14, 16, 20}) {
      const auto cost =
          huff::encoded_bits(huff::build_limited_lengths(h, limit), h);
      EXPECT_LE(cost, prev) << wl::to_string(kind) << " limit " << int{limit};
      EXPECT_GE(cost, unconstrained);
      prev = cost;
    }
    // By 20 bits the constraint is inactive on these inputs.
    EXPECT_EQ(prev, unconstrained) << wl::to_string(kind);
  }
}

TEST(FastDecoder, ValidatesWindow) {
  Histogram h;
  h.at('a') = 2;
  h.at('b') = 1;
  const CodeTable t = CodeTable::from_histogram(h);
  EXPECT_THROW(FastDecoder(t, 0), std::invalid_argument);
  EXPECT_THROW(FastDecoder(t, 17), std::invalid_argument);
}

TEST(FastDecoder, FullyTabledWhenCodesFitWindow) {
  const Histogram h =
      Histogram::of(wl::make_corpus(wl::FileKind::Txt, 100000)).with_floor(1);
  const CodeTable limited =
      CodeTable::from_lengths(huff::build_limited_lengths(h, 12));
  EXPECT_TRUE(FastDecoder(limited, 12).fully_tabled());
  EXPECT_FALSE(FastDecoder(limited, 8).fully_tabled());
}

class FastDecoderEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FastDecoderEquivalence, MatchesCanonicalDecoder) {
  const auto kind =
      static_cast<wl::FileKind>(GetParam() % 3);
  const auto data = wl::make_corpus(kind, 40000, GetParam());
  const Histogram h = Histogram::of(data);
  const CodeTable t = CodeTable::from_histogram(h);
  const auto enc = huff::encode_block(data, t);

  const huff::Decoder slow(t);
  for (std::uint8_t window : {4, 8, 12}) {
    const FastDecoder fast(t, window);
    EXPECT_EQ(fast.decode(enc.bits, data.size()),
              slow.decode(enc.bits, data.size()))
        << "window " << int{window};
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastDecoderEquivalence,
                         ::testing::Range<std::uint64_t>(0, 9));

TEST(FastDecoder, StartBitOffsetsWork) {
  const auto data = wl::make_corpus(wl::FileKind::Pdf, 20000, 2);
  const auto container = huff::compress_buffer(data, 4096);
  const auto s = huff::deserialize(container);
  const FastDecoder fast(s.table(), 12);
  for (std::size_t b = 0; b < s.n_blocks; ++b) {
    const auto block =
        fast.decode(s.payload, s.block_bytes(b), s.block_offsets[b]);
    EXPECT_TRUE(std::equal(block.begin(), block.end(),
                           data.begin() + static_cast<std::ptrdiff_t>(b * 4096)))
        << b;
  }
}

TEST(FastDecoder, TruncatedInputThrows) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 1000);
  const CodeTable t = CodeTable::from_histogram(Histogram::of(data));
  const auto enc = huff::encode_block(data, t);
  const FastDecoder fast(t, 10);
  EXPECT_THROW(fast.decode(enc.bits, data.size() + 100), std::runtime_error);
}

}  // namespace
