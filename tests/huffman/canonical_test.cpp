#include "huffman/canonical.h"

#include <gtest/gtest.h>

#include <string>

#include "workload/corpus.h"
#include "workload/rng.h"

namespace {

using huff::CodeLengths;
using huff::CodeTable;
using huff::Histogram;

std::string code_bits(const CodeTable& t, std::size_t sym) {
  std::string s;
  for (int i = t.length(sym) - 1; i >= 0; --i) {
    s += ((t.code(sym) >> i) & 1) ? '1' : '0';
  }
  return s;
}

TEST(KraftValid, AcceptsExactAndSlackCodes) {
  CodeLengths lens{};
  lens[0] = 1;
  lens[1] = 2;
  lens[2] = 2;  // exact: 1/2 + 1/4 + 1/4 = 1
  EXPECT_TRUE(huff::kraft_valid(lens));
  lens[2] = 3;  // slack
  EXPECT_TRUE(huff::kraft_valid(lens));
}

TEST(KraftValid, RejectsOverfullCodes) {
  CodeLengths lens{};
  lens[0] = 1;
  lens[1] = 1;
  lens[2] = 1;  // 3/2 > 1
  EXPECT_FALSE(huff::kraft_valid(lens));
}

TEST(KraftValid, RejectsOverlongCodes) {
  CodeLengths lens{};
  lens[0] = huff::kMaxCodeBits + 1;
  EXPECT_FALSE(huff::kraft_valid(lens));
}

TEST(CodeTable, ThrowsOnInvalidLengths) {
  CodeLengths lens{};
  lens[0] = 1;
  lens[1] = 1;
  lens[2] = 1;
  EXPECT_THROW(CodeTable::from_lengths(lens), std::invalid_argument);
}

TEST(CodeTable, CanonicalAssignmentKnownExample) {
  // Lengths a=1, b=3, c=3, d=3, e=3 → canonical: a=0, b=100, c=101, d=110,
  // e=111.
  CodeLengths lens{};
  lens['a'] = 1;
  lens['b'] = 3;
  lens['c'] = 3;
  lens['d'] = 3;
  lens['e'] = 3;
  const CodeTable t = CodeTable::from_lengths(lens);
  EXPECT_EQ(code_bits(t, 'a'), "0");
  EXPECT_EQ(code_bits(t, 'b'), "100");
  EXPECT_EQ(code_bits(t, 'c'), "101");
  EXPECT_EQ(code_bits(t, 'd'), "110");
  EXPECT_EQ(code_bits(t, 'e'), "111");
}

TEST(CodeTable, EqualLengthCodesOrderedBySymbol) {
  CodeLengths lens{};
  lens[200] = 2;
  lens[3] = 2;
  lens[100] = 2;
  const CodeTable t = CodeTable::from_lengths(lens);
  EXPECT_LT(t.code(3), t.code(100));
  EXPECT_LT(t.code(100), t.code(200));
}

class CanonicalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanonicalProperty, CodesArePrefixFree) {
  const Histogram h = Histogram::of(
      wl::make_corpus(wl::FileKind::Pdf, 20000, GetParam()));
  const CodeTable t = CodeTable::from_histogram(h);

  std::vector<std::string> codes;
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    if (t.has_code(s)) codes.push_back(code_bits(t, s));
  }
  ASSERT_GT(codes.size(), 1u);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = 0; j < codes.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(codes[j].starts_with(codes[i]))
          << codes[i] << " prefixes " << codes[j];
    }
  }
}

TEST_P(CanonicalProperty, PreservesTreeLengths) {
  const Histogram h = Histogram::of(
      wl::make_corpus(wl::FileKind::Txt, 20000, GetParam()));
  const huff::HuffmanTree tree = huff::HuffmanTree::build(h);
  const CodeTable t = CodeTable::from_lengths(tree.lengths());
  EXPECT_EQ(t.lengths(), tree.lengths());
  EXPECT_EQ(t.encoded_bits(h), tree.cost());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(CodeTable, CoversMatchesHasCode) {
  Histogram h;
  h.at('x') = 5;
  h.at('y') = 3;
  const CodeTable t = CodeTable::from_histogram(h);
  EXPECT_TRUE(t.has_code('x'));
  EXPECT_FALSE(t.has_code('z'));
  Histogram with_z;
  with_z.at('z') = 1;
  EXPECT_FALSE(t.covers(with_z));
  EXPECT_EQ(t.coded_symbols(), 2u);
}

TEST(CodeTable, FlooredHistogramCoversEverything) {
  Histogram h;
  h.at('q') = 1000;
  const CodeTable t = CodeTable::from_histogram(h.with_floor(1));
  EXPECT_EQ(t.coded_symbols(), huff::kSymbols);
  for (std::size_t s = 0; s < huff::kSymbols; ++s) {
    EXPECT_TRUE(t.has_code(s));
  }
}

}  // namespace
