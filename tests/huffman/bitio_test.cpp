#include "huffman/bitio.h"

#include <gtest/gtest.h>

#include "workload/rng.h"

namespace {

using huff::BitReader;
using huff::BitWriter;

TEST(BitWriter, MsbFirstWithinByte) {
  BitWriter w;
  w.put(0b1, 1);
  w.put(0b0, 1);
  w.put(0b1, 1);
  EXPECT_EQ(w.bit_size(), 3u);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitWriter, MultiBitPutUsesLowBits) {
  BitWriter w;
  w.put(0b101101, 6);
  const auto bytes = w.take();
  EXPECT_EQ(bytes[0], 0b10110100);
}

TEST(BitWriter, ZeroBitsIsNoop) {
  BitWriter w;
  w.put(0xFFFF, 0);
  EXPECT_EQ(w.bit_size(), 0u);
  EXPECT_TRUE(w.take().empty());
}

TEST(BitWriter, RejectsOver64Bits) {
  BitWriter w;
  EXPECT_THROW(w.put(0, 65), std::invalid_argument);
}

TEST(BitWriter, TakeResetsState) {
  BitWriter w;
  w.put(0xAB, 8);
  (void)w.take();
  EXPECT_EQ(w.bit_size(), 0u);
  w.put(0x1, 1);
  EXPECT_EQ(w.take()[0], 0b10000000);
}

TEST(BitReader, ReadsBackWriterOutput) {
  BitWriter w;
  w.put(0b110, 3);
  w.put(0b01, 2);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bit(), 0u);
  EXPECT_EQ(r.get(2), 0b01u);
}

TEST(BitReader, SeekRepositions) {
  BitWriter w;
  w.put(0b10110011, 8);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.seek(4);
  EXPECT_EQ(r.get(4), 0b0011u);
  r.seek(0);
  EXPECT_EQ(r.get(2), 0b10u);
}

TEST(BitReader, ThrowsPastEnd) {
  const std::vector<std::uint8_t> bytes = {0xFF};
  BitReader r(bytes);
  r.get(8);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.get_bit(), std::out_of_range);
}

class BitIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitIoRoundTrip, RandomChunksRoundTrip) {
  wl::Rng rng(GetParam());
  BitWriter w;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> chunks;
  for (int i = 0; i < 500; ++i) {
    const auto nbits = static_cast<std::uint8_t>(1 + rng.below(63));
    const std::uint64_t value =
        nbits == 64 ? rng.next() : (rng.next() & ((1ULL << nbits) - 1));
    chunks.emplace_back(value, nbits);
    w.put(value, nbits);
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto& [value, nbits] : chunks) {
    EXPECT_EQ(r.get(nbits), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundTrip,
                         ::testing::Values(3, 7, 31, 127, 8191));

TEST(SpliceBits, ByteAlignedFastPath) {
  std::vector<std::uint8_t> dst(4, 0);
  const std::vector<std::uint8_t> src = {0xAB, 0xCD};
  huff::splice_bits(dst, 8, src, 12);
  EXPECT_EQ(dst[0], 0x00);
  EXPECT_EQ(dst[1], 0xAB);
  EXPECT_EQ(dst[2], 0xC0);  // only top 4 bits of 0xCD
  EXPECT_EQ(dst[3], 0x00);
}

TEST(SpliceBits, UnalignedShiftMerge) {
  std::vector<std::uint8_t> dst(3, 0);
  const std::vector<std::uint8_t> src = {0b11111111};
  huff::splice_bits(dst, 3, src, 8);
  EXPECT_EQ(dst[0], 0b00011111);
  EXPECT_EQ(dst[1], 0b11100000);
}

TEST(SpliceBits, MergesIntoExistingBits) {
  std::vector<std::uint8_t> dst = {0b10000000, 0};
  const std::vector<std::uint8_t> src = {0b01000000};
  huff::splice_bits(dst, 1, src, 2);
  EXPECT_EQ(dst[0], 0b10100000);
}

TEST(SpliceBits, BoundsChecked) {
  std::vector<std::uint8_t> dst(1, 0);
  const std::vector<std::uint8_t> src = {0xFF};
  EXPECT_THROW(huff::splice_bits(dst, 4, src, 8), std::out_of_range);
  EXPECT_THROW(huff::splice_bits(dst, 0, src, 16), std::out_of_range);
}

class SpliceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpliceProperty, SplicedStreamsEqualSequentialWrites) {
  // Writing chunks sequentially must equal splicing each chunk at its
  // pre-computed bit offset into a zeroed buffer — the parallel-encode
  // correctness property.
  wl::Rng rng(GetParam());
  BitWriter seq;
  std::vector<std::vector<std::uint8_t>> parts;
  std::vector<std::uint64_t> part_bits;
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 40; ++i) {
    BitWriter part;
    const int n = 1 + static_cast<int>(rng.below(30));
    for (int j = 0; j < n; ++j) {
      const auto nbits = static_cast<std::uint8_t>(1 + rng.below(16));
      const std::uint64_t v = rng.next() & ((1ULL << nbits) - 1);
      part.put(v, nbits);
      seq.put(v, nbits);
    }
    offsets.push_back(seq.bit_size() - part.bit_size());
    part_bits.push_back(part.bit_size());
    parts.push_back(part.take());
  }
  const auto expected = seq.take();
  std::vector<std::uint8_t> spliced(expected.size(), 0);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    huff::splice_bits(spliced, offsets[i], parts[i], part_bits[i]);
  }
  EXPECT_EQ(spliced, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpliceProperty,
                         ::testing::Values(17, 34, 51, 68, 85, 102));

}  // namespace
