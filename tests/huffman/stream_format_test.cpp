#include "huffman/stream_format.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "workload/corpus.h"
#include "workload/rng.h"

namespace {

using huff::CompressedStream;

TEST(StreamFormat, SerializeDeserializeRoundTrips) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 20000);
  const auto container = huff::compress_buffer(data, 4096);
  const CompressedStream s = huff::deserialize(container);
  EXPECT_EQ(s.original_bytes, data.size());
  EXPECT_EQ(s.block_size, 4096u);
  EXPECT_EQ(s.n_blocks, (data.size() + 4095) / 4096);
  EXPECT_EQ(huff::serialize(s), container);
}

class StreamRoundTrip
    : public ::testing::TestWithParam<std::tuple<wl::FileKind, std::size_t>> {};

TEST_P(StreamRoundTrip, CompressDecompressIsIdentity) {
  const auto [kind, bytes] = GetParam();
  const auto data = wl::make_corpus(kind, bytes);
  const auto container = huff::compress_buffer(data);
  EXPECT_EQ(huff::decompress_buffer(container), data);
  EXPECT_LT(container.size(), data.size() + 400)
      << "container should not blow up the input";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StreamRoundTrip,
    ::testing::Combine(::testing::Values(wl::FileKind::Txt, wl::FileKind::Bmp,
                                         wl::FileKind::Pdf),
                       ::testing::Values(std::size_t{1}, std::size_t{4096},
                                         std::size_t{100000})));

TEST(StreamFormat, TextCompressesWell) {
  // "text files use only around 70 characters ... allowing at minimum a
  // nearly 3.5x compression ratio" (paper §IV-A). Our synthetic text is
  // lowercase-heavy, so expect < 60 % of the input size.
  const auto data = wl::make_corpus(wl::FileKind::Txt, 200000);
  const auto container = huff::compress_buffer(data);
  EXPECT_LT(container.size(), data.size() * 6 / 10);
}

TEST(StreamFormat, BadMagicThrows) {
  auto container = huff::compress_buffer(wl::make_corpus(wl::FileKind::Txt, 100));
  container[0] = 'X';
  EXPECT_THROW(huff::deserialize(container), std::runtime_error);
}

TEST(StreamFormat, BadVersionThrows) {
  auto container = huff::compress_buffer(wl::make_corpus(wl::FileKind::Txt, 100));
  container[4] = 99;
  EXPECT_THROW(huff::deserialize(container), std::runtime_error);
}

TEST(StreamFormat, TruncationThrows) {
  const auto container =
      huff::compress_buffer(wl::make_corpus(wl::FileKind::Txt, 5000));
  for (const std::size_t keep : {std::size_t{3}, std::size_t{20},
                                 container.size() / 2, container.size() - 1}) {
    const std::span<const std::uint8_t> cut(container.data(), keep);
    EXPECT_THROW((void)huff::deserialize(cut), std::runtime_error) << keep;
  }
}

TEST(StreamFormat, CorruptLengthsThrow) {
  auto container = huff::compress_buffer(wl::make_corpus(wl::FileKind::Txt, 100));
  // Code lengths start after magic(4)+version(2)+n_bytes(8)+blocks(4)+bs(4).
  const std::size_t lengths_off = 22;
  for (std::size_t i = 0; i < 8; ++i) {
    container[lengths_off + i] = 1;  // many 1-bit codes violate Kraft
  }
  EXPECT_THROW(huff::deserialize(container), std::runtime_error);
}

TEST(StreamFormat, ZeroBlockSizeRejected) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 100);
  EXPECT_THROW(huff::compress_buffer(data, 0), std::invalid_argument);
}

TEST(StreamFormat, FileHelpersRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "tvs_fmt_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "x.tvsh").string();
  const auto data = wl::make_corpus(wl::FileKind::Bmp, 30000);
  const auto container = huff::compress_buffer(data);
  huff::write_file(path, container);
  EXPECT_EQ(huff::read_file(path), container);
  EXPECT_EQ(huff::decompress_buffer(huff::read_file(path)), data);
  std::filesystem::remove_all(dir);
}

TEST(StreamFormat, ReadMissingFileThrows) {
  EXPECT_THROW(huff::read_file("/nonexistent/tvs/file"), std::runtime_error);
}

// --- Random access (format v2 block index) ---------------------------------

TEST(RandomAccess, DecodeBlockMatchesFullDecode) {
  const auto data = wl::make_corpus(wl::FileKind::Pdf, 50000);
  const auto container = huff::compress_buffer(data, 4096, /*with_index=*/true);
  const auto s = huff::deserialize(container);
  ASSERT_TRUE(s.has_index());
  ASSERT_EQ(s.block_offsets.size(), s.n_blocks);

  for (std::size_t b = 0; b < s.n_blocks; ++b) {
    const auto block = huff::decode_block(s, b);
    const std::size_t begin = b * 4096;
    const std::size_t len = std::min<std::size_t>(4096, data.size() - begin);
    ASSERT_EQ(block.size(), len) << b;
    EXPECT_TRUE(std::equal(block.begin(), block.end(), data.begin() +
                                                           static_cast<std::ptrdiff_t>(begin)))
        << "block " << b;
  }
}

TEST(RandomAccess, LastShortBlockDecodes) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 10000);  // 4096*2+1808
  const auto s = huff::deserialize(huff::compress_buffer(data));
  EXPECT_EQ(s.block_bytes(0), 4096u);
  EXPECT_EQ(s.block_bytes(2), 10000u - 2 * 4096u);
  const auto last = huff::decode_block(s, 2);
  EXPECT_TRUE(std::equal(last.begin(), last.end(), data.begin() + 8192));
}

TEST(RandomAccess, NoIndexThrows) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 10000);
  const auto s = huff::deserialize(
      huff::compress_buffer(data, 4096, /*with_index=*/false));
  EXPECT_FALSE(s.has_index());
  EXPECT_THROW(huff::decode_block(s, 0), std::logic_error);
  // Full decode still works without the index.
  EXPECT_EQ(huff::decompress_buffer(huff::serialize(s)), data);
}

TEST(RandomAccess, OutOfRangeBlockThrows) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 10000);
  const auto s = huff::deserialize(huff::compress_buffer(data));
  EXPECT_THROW(huff::decode_block(s, s.n_blocks), std::out_of_range);
  EXPECT_THROW(s.block_bytes(99), std::out_of_range);
}

TEST(RandomAccess, IndexCostIsSmall) {
  const auto data = wl::make_corpus(wl::FileKind::Txt, 1 << 20);
  const auto with = huff::compress_buffer(data, 4096, true);
  const auto without = huff::compress_buffer(data, 4096, false);
  EXPECT_EQ(with.size() - without.size(), (data.size() / 4096) * 8);
}

TEST(RandomAccess, CorruptIndexFlagThrows) {
  auto container = huff::compress_buffer(wl::make_corpus(wl::FileKind::Txt, 100));
  container[22 + 256] = 7;  // the has_index flag byte
  EXPECT_THROW(huff::deserialize(container), std::runtime_error);
}

TEST(RandomAccess, FuzzedCorruptionThrowsButNeverCrashes) {
  const auto data = wl::make_corpus(wl::FileKind::Bmp, 30000);
  const auto container = huff::compress_buffer(data);
  wl::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto bad = container;
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      bad[rng.below(bad.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Any result is acceptable except memory errors: a clean decode (the
    // corruption hit padding), a thrown exception, or a wrong-but-bounded
    // output.
    try {
      const auto out = huff::decompress_buffer(bad);
      EXPECT_LE(out.size(), data.size());
    } catch (const std::exception&) {
      // expected for most corruptions
    }
  }
}

}  // namespace
