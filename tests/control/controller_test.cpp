// Control-plane decision logic: the no-flap contract (hysteresis band,
// min-dwell, bounds) on the generic Knob, and the two tuners' feedback
// polarity. Pure logic — no threads, no clocks beyond the now_us argument.
#include "control/controller.h"

#include <gtest/gtest.h>

namespace {

using control::Action;
using control::AdmissionLimits;
using control::AdmissionTuner;
using control::classify;
using control::ControlConfig;
using control::Controller;
using control::Knob;
using control::SpecTuner;

ControlConfig fast_cfg() {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.interval_us = 1'000;
  cfg.min_dwell_us = 10'000;
  return cfg;
}

// --- classify / hysteresis -------------------------------------------------

TEST(Classify, BandEdgesHold) {
  EXPECT_EQ(classify(5.0, 1.0, 4.0), 1);
  EXPECT_EQ(classify(0.5, 1.0, 4.0), -1);
  EXPECT_EQ(classify(2.0, 1.0, 4.0), 0);
  // The edges themselves are inside the band: approaching from either side
  // and settling exactly on an edge produces zero movement.
  EXPECT_EQ(classify(4.0, 1.0, 4.0), 0);
  EXPECT_EQ(classify(1.0, 1.0, 4.0), 0);
}

// --- Knob ------------------------------------------------------------------

TEST(KnobTest, RaiseAndLowerRespectBounds) {
  Knob k(2.0, 1.0, 3.0, 1.0);
  EXPECT_TRUE(k.raise(0, 0));
  EXPECT_DOUBLE_EQ(k.value(), 3.0);
  EXPECT_FALSE(k.raise(100, 0)) << "saturated at hi: no wind-up";
  EXPECT_DOUBLE_EQ(k.value(), 3.0);
  EXPECT_TRUE(k.lower(200, 0));
  EXPECT_TRUE(k.lower(300, 0));
  EXPECT_DOUBLE_EQ(k.value(), 1.0);
  EXPECT_FALSE(k.lower(400, 0)) << "saturated at lo";
  EXPECT_EQ(k.moves(), 3u);
}

TEST(KnobTest, InitialValueIsClamped) {
  EXPECT_DOUBLE_EQ(Knob(9.0, 1.0, 3.0, 1.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(Knob(0.0, 1.0, 3.0, 1.0).value(), 1.0);
}

TEST(KnobTest, MinDwellFreezesAfterAMove) {
  Knob k(0.0, 0.0, 10.0, 1.0);
  EXPECT_TRUE(k.raise(1'000, 5'000));
  EXPECT_FALSE(k.raise(2'000, 5'000)) << "frozen inside the dwell";
  EXPECT_FALSE(k.lower(5'999, 5'000)) << "freeze applies in both directions";
  EXPECT_TRUE(k.raise(6'000, 5'000)) << "dwell elapsed";
  EXPECT_EQ(k.moves(), 2u);
}

TEST(KnobTest, BlockedMoveDoesNotResetTheDwellClock) {
  Knob k(0.0, 0.0, 10.0, 1.0);
  EXPECT_TRUE(k.raise(0, 5'000));
  // Hammer it throughout the freeze; the clock must still expire at 5000.
  for (std::uint64_t t = 1; t < 5'000; t += 500) EXPECT_FALSE(k.raise(t, 5'000));
  EXPECT_TRUE(k.raise(5'000, 5'000));
}

TEST(KnobTest, FirstMoveNeedsNoDwell) {
  Knob k(0.0, 0.0, 10.0, 1.0);
  EXPECT_TRUE(k.raise(0, 1'000'000)) << "dwell only gates moves after a move";
}

TEST(KnobTest, OscillatingInputMovesAtMostOncePerDwell) {
  // The no-flap property, stated directly: a signal crossing the whole band
  // every sample moves the knob at most once per dwell period, never once
  // per sample.
  Knob k(5.0, 0.0, 10.0, 1.0);
  const std::uint64_t dwell = 10'000;
  std::uint64_t moves = 0;
  for (std::uint64_t t = 0; t < 100'000; t += 1'000) {
    const bool up = (t / 1'000) % 2 == 0;
    if (up ? k.raise(t, dwell) : k.lower(t, dwell)) ++moves;
  }
  EXPECT_LE(moves, 100'000 / dwell + 1);
  EXPECT_EQ(moves, k.moves());
}

// --- SpecTuner -------------------------------------------------------------

TEST(SpecTunerTest, HoldsInsideTheBand) {
  SpecTuner t(fast_cfg(), 0.0, 4);
  EXPECT_TRUE(t.sample(2.0, 0).empty());
  EXPECT_TRUE(t.sample(2.0, 100'000).empty());
  EXPECT_FALSE(t.tightened());
  EXPECT_EQ(t.retunes(), 0u);
}

TEST(SpecTunerTest, HighRollbackRateTightensAllThreeKnobs) {
  const auto cfg = fast_cfg();
  SpecTuner t(cfg, 0.0, 4);
  const auto actions = t.sample(10.0, 0);
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_STREQ(actions[0].knob, "confidence_gate");
  EXPECT_STREQ(actions[1].knob, "restart_min_defer");
  EXPECT_STREQ(actions[2].knob, "step_size");
  for (const Action& a : actions) {
    EXPECT_EQ(a.direction, 1);
    EXPECT_STREQ(a.reason, "rollback_rate_high");
  }
  EXPECT_DOUBLE_EQ(t.confidence_gate(), cfg.gate_step);
  EXPECT_EQ(t.restart_min_defer(), cfg.defer_step);
  EXPECT_EQ(t.step_size(), 8u) << "step stretches by one base step";
  EXPECT_TRUE(t.tightened());
  EXPECT_EQ(t.retunes(), 1u);
}

TEST(SpecTunerTest, LowRateRelaxesBackToBaselineAndStops) {
  const auto cfg = fast_cfg();
  SpecTuner t(cfg, 0.2, 4);
  ASSERT_FALSE(t.sample(10.0, 0).empty());
  // Relax one step per dwell until every knob is back at its baseline.
  std::uint64_t now = cfg.min_dwell_us;
  while (!t.sample(0.0, now).empty()) now += cfg.min_dwell_us;
  EXPECT_DOUBLE_EQ(t.confidence_gate(), 0.2) << "baseline, not zero";
  EXPECT_EQ(t.restart_min_defer(), 0u);
  EXPECT_EQ(t.step_size(), 4u);
  EXPECT_FALSE(t.tightened());
  // A persistently quiet signal never pushes any knob below its baseline.
  EXPECT_TRUE(t.sample(0.0, now + 10 * cfg.min_dwell_us).empty());
}

TEST(SpecTunerTest, DwellFreezesBetweenSamples) {
  const auto cfg = fast_cfg();
  SpecTuner t(cfg, 0.0, 4);
  EXPECT_EQ(t.sample(10.0, 0).size(), 3u);
  EXPECT_TRUE(t.sample(10.0, cfg.interval_us).empty()) << "inside the dwell";
  EXPECT_EQ(t.sample(10.0, cfg.min_dwell_us).size(), 3u);
  EXPECT_EQ(t.retunes(), 2u);
}

TEST(SpecTunerTest, KnobsSaturateAtTheirCeilings) {
  const auto cfg = fast_cfg();
  SpecTuner t(cfg, 0.0, 2);
  std::uint64_t now = 0;
  for (int i = 0; i < 100; ++i, now += cfg.min_dwell_us) t.sample(100.0, now);
  EXPECT_LE(t.confidence_gate(), cfg.gate_max);
  EXPECT_EQ(t.restart_min_defer(), cfg.defer_max);
  EXPECT_EQ(t.step_size(), 2 * cfg.step_max_mult);
  EXPECT_TRUE(t.sample(100.0, now).empty()) << "saturated: no wind-up";
}

// --- AdmissionTuner --------------------------------------------------------

TEST(AdmissionTunerTest, WaitSignalDrivesTheConcurrencyWindow) {
  const auto cfg = fast_cfg();
  AdmissionTuner t(cfg, {.max_concurrent = 4, .bulk_queue_cap = 64});
  auto acts = t.sample(cfg.wait_high_us * 2, 0.0, 0);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_STREQ(acts[0].knob, "max_concurrent");
  EXPECT_EQ(acts[0].direction, 1);
  EXPECT_STREQ(acts[0].reason, "wait_high");
  EXPECT_EQ(t.limits().max_concurrent, 5u);

  acts = t.sample(0.0, 0.0, cfg.min_dwell_us);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].direction, -1);
  EXPECT_STREQ(acts[0].reason, "wait_low");
  EXPECT_EQ(t.limits().max_concurrent, 4u);
  // The configured baseline is the floor — quiet periods never shrink the
  // window below what the operator asked for.
  EXPECT_TRUE(t.sample(0.0, 0.0, 10 * cfg.min_dwell_us).empty());
}

TEST(AdmissionTunerTest, DeadlineShedsShrinkBulkQueueTowardTheFloor) {
  const auto cfg = fast_cfg();
  AdmissionTuner t(cfg, {.max_concurrent = 4, .bulk_queue_cap = 64});
  auto acts = t.sample(cfg.wait_low_us, 10.0, 0);
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_STREQ(acts[0].knob, "bulk_queue_cap");
  EXPECT_EQ(acts[0].direction, 1) << "+1 = tightened (the cap shrank)";
  EXPECT_STREQ(acts[0].reason, "shed_rate_high");
  EXPECT_EQ(t.limits().bulk_queue_cap, 48u) << "one quarter per move";

  std::uint64_t now = cfg.min_dwell_us;
  for (int i = 0; i < 100; ++i, now += cfg.min_dwell_us)
    t.sample(cfg.wait_low_us, 10.0, now);
  EXPECT_EQ(t.limits().bulk_queue_cap, cfg.bulk_queue_min) << "floored";

  // Recovery regrows it to the configured cap, never beyond.
  for (int i = 0; i < 100; ++i, now += cfg.min_dwell_us)
    t.sample(cfg.wait_low_us, 0.0, now);
  EXPECT_EQ(t.limits().bulk_queue_cap, 64u);
}

TEST(AdmissionTunerTest, ConcurrencySaturatesAtConfiguredMax) {
  const auto cfg = fast_cfg();
  AdmissionTuner t(cfg, {.max_concurrent = 4, .bulk_queue_cap = 64});
  std::uint64_t now = 0;
  for (int i = 0; i < 100; ++i, now += cfg.min_dwell_us)
    t.sample(1e9, 0.0, now);
  EXPECT_EQ(t.limits().max_concurrent, cfg.concurrent_max);
}

TEST(AdmissionTunerTest, TwoLoopsAreIndependent) {
  const auto cfg = fast_cfg();
  AdmissionTuner t(cfg, {.max_concurrent = 4, .bulk_queue_cap = 64});
  const auto acts = t.sample(cfg.wait_high_us * 2, 10.0, 0);
  ASSERT_EQ(acts.size(), 2u) << "both loops may move on one sample";
  EXPECT_STREQ(acts[0].knob, "max_concurrent");
  EXPECT_STREQ(acts[1].knob, "bulk_queue_cap");
  EXPECT_EQ(t.retunes(), 1u) << "one retune event, two movements";
}

// --- Controller ------------------------------------------------------------

TEST(ControllerTest, StreamsAreCreatedOnFirstUseAndDroppable) {
  Controller c(fast_cfg(), {.max_concurrent = 4, .bulk_queue_cap = 64});
  SpecTuner& a = c.stream(1, 0.0, 4);
  SpecTuner& b = c.stream(2, 0.5, 8);
  EXPECT_EQ(c.streams(), 2u);
  EXPECT_EQ(&c.stream(1, 0.9, 16), &a) << "baselines ignored on reuse";
  EXPECT_EQ(a.step_size(), 4u);
  EXPECT_EQ(b.step_size(), 8u);
  c.drop_stream(1);
  EXPECT_EQ(c.streams(), 1u);
  c.drop_stream(42);  // unknown ids are a no-op
  EXPECT_EQ(c.streams(), 1u);
}

TEST(ControllerTest, StreamsTuneIndependently) {
  Controller c(fast_cfg(), {.max_concurrent = 4, .bulk_queue_cap = 64});
  c.stream(1, 0.0, 4).sample(100.0, 0);
  EXPECT_TRUE(c.stream(1, 0.0, 4).tightened());
  EXPECT_FALSE(c.stream(2, 0.0, 4).tightened())
      << "stream 2's knobs must not move on stream 1's signal";
}

}  // namespace
