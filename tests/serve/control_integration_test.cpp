// The adaptive control plane wired into a live SessionManager: the control
// thread samples real serving metrics and its decisions land on the live
// AdmissionController and on running sessions' Speculators. The decision
// *logic* (bands, dwell, bounds) is pinned in tests/control; these tests
// pin the plumbing — signals in, retunes out, nothing moving when disabled.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "metrics/registry.h"
#include "pipeline/driver.h"
#include "pipeline/run_config.h"
#include "serve/session_manager.h"

namespace {

using serve::SessionConfig;
using serve::SessionManager;

SessionConfig spec_session(std::uint64_t seed) {
  SessionConfig sc;
  sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                         sre::DispatchPolicy::Balanced);
  sc.run.bytes = 256 * 1024;
  sc.run.seed = seed;
  return sc;
}

TEST(ControlIntegration, DisabledControllerReportsStaticBaselines) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_concurrent = 3;
  cfg.shed.queue_capacity = {8, 8, 5};
  SessionManager mgr(cfg);
  const auto id = mgr.submit(spec_session(1)).id;
  EXPECT_NE(mgr.wait(id), nullptr);
  mgr.drain();

  const auto cs = mgr.control_status();
  EXPECT_EQ(cs.max_concurrent, 3u);
  EXPECT_EQ(cs.bulk_queue_cap, 5u);
  EXPECT_EQ(cs.admission_retunes, 0u);
  EXPECT_EQ(cs.spec_retunes, 0u);
  EXPECT_EQ(mgr.stats(id).control.spec_retunes, 0u);
}

TEST(ControlIntegration, SpecRetunesReachRunningSessions) {
  metrics::Registry reg;
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 2;
  cfg.registry = &reg;
  cfg.control.enabled = true;
  cfg.control.interval_us = 2'000;
  cfg.control.min_dwell_us = 4'000;
  // Force the tighten edge: any rollback rate (including a quiet 0) reads
  // as "high", so every dwell-expiry tick must retune whatever is running.
  cfg.control.rollback_rate_high = -1.0;
  cfg.control.rollback_rate_low = -2.0;
  SessionManager mgr(cfg);

  std::vector<serve::SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto out = mgr.submit(spec_session(seed));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (const auto id : ids) {
    const pipeline::RunResult* r = mgr.wait(id);
    ASSERT_NE(r, nullptr);
    pipeline::verify_roundtrip(*r);
  }
  mgr.drain();

  const auto cs = mgr.control_status();
  EXPECT_GT(cs.spec_retunes, 0u) << "ticks landed while sessions ran";
  std::uint64_t tuned_sessions = 0;
  for (const auto id : ids) {
    const auto st = mgr.stats(id);
    if (st.control.spec_retunes == 0) continue;
    ++tuned_sessions;
    // A tightened session's decisions are visible in its stats.
    EXPECT_GT(st.control.restart_min_defer, 0u) << "id=" << id;
    EXPECT_GE(st.control.step_size, spec_session(id).run.spec.step_size)
        << "id=" << id;
  }
  EXPECT_GT(tuned_sessions, 0u);
  // Decisions are attributed through the metrics path too.
  EXPECT_GT(reg.counter_sum("serve_control_retunes_total"), 0.0);
}

TEST(ControlIntegration, QueuePressureWidensTheConcurrencyWindow) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 1;  // a deliberately undersized window...
  cfg.control.enabled = true;
  cfg.control.interval_us = 2'000;
  cfg.control.min_dwell_us = 4'000;
  cfg.control.wait_high_us = 1'000;  // ...so queue waits cross the band fast
  cfg.control.wait_low_us = 100;
  cfg.control.concurrent_max = 4;
  SessionManager mgr(cfg);  // no registry: the owned-registry fallback path

  std::vector<serve::SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SessionConfig sc = spec_session(seed);
    sc.priority = serve::Priority::Interactive;  // the wait signal's class
    const auto out = mgr.submit(std::move(sc));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (const auto id : ids) EXPECT_NE(mgr.wait(id), nullptr);
  mgr.drain();

  const auto cs = mgr.control_status();
  EXPECT_GT(cs.admission_retunes, 0u) << "queue wait never tripped the band";
  EXPECT_GT(cs.max_concurrent, 1u) << "the window should have widened";
  EXPECT_LE(cs.max_concurrent, cfg.control.concurrent_max);
}

TEST(ControlIntegration, ControlThreadSurvivesAnIdleService) {
  // No sessions at all: ticks fire on an empty service and must neither
  // crash, deadlock, nor invent retunes from all-zero signals.
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.control.enabled = true;
  cfg.control.interval_us = 1'000;
  SessionManager mgr(cfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mgr.drain();
  const auto cs = mgr.control_status();
  EXPECT_EQ(cs.spec_retunes, 0u);
  EXPECT_EQ(cs.admission_retunes, 0u);
}

}  // namespace
