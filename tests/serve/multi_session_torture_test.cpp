// Multi-session torture: two concurrent sessions on one shared fleet under
// the chaos schedule, one engineered to roll back and one engineered to
// commit. The serving layer's isolation promise is that they cannot see
// each other: the committing session must finish with zero rollbacks and
// zero wait-buffer discards no matter how often its neighbor rolls back,
// and after the drain the shared runtime must hold no epoch bookkeeping
// from either of them.
//
// Determinism trick (timing-independent assertions on a real-thread run):
//  * tolerance = 0 on drifting BMP content — every verification of an
//    estimated tree fails, so the session must take the rollback path at
//    least once regardless of scheduling;
//  * tolerance = 1e9 — every verification passes, so the first speculation
//    commits and the rollback count is exactly zero.
// The chaos hook only permutes interleavings (yields/sleeps, no fault
// injection), so both outcomes hold for every seed.
#include <gtest/gtest.h>

#include <cstdint>

#include "pipeline/driver.h"
#include "pipeline/run_config.h"
#include "serve/session_manager.h"
#include "sre/chaos_point.h"
#include "stress/chaos_schedule.h"

namespace {

serve::SessionConfig rollback_session(std::uint64_t seed) {
  serve::SessionConfig sc;
  sc.name = "rollback";
  sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Bmp,
                                         sre::DispatchPolicy::Balanced);
  sc.run.bytes = 256 * 1024;
  sc.run.seed = seed;
  sc.run.spec.tolerance = 0.0;  // any estimate error fails the check
  return sc;
}

serve::SessionConfig commit_session(std::uint64_t seed) {
  serve::SessionConfig sc;
  sc.name = "commit";
  sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                         sre::DispatchPolicy::Balanced);
  sc.run.bytes = 256 * 1024;
  sc.run.seed = seed;
  sc.run.spec.tolerance = 1e9;  // any estimate passes the check
  return sc;
}

TEST(MultiSessionTorture, RollbackNeighborNeverLeaksIntoCommittingSession) {
  for (const std::uint64_t seed : {11ull, 202ull, 3003ull}) {
    stress::ChaosOptions copts;  // yields/sleeps only; no fault injection
    stress::ChaosSchedule chaos(seed, copts);
    sre::chaos::ScopedHook guard(&chaos);

    serve::ServiceConfig cfg;
    cfg.workers = 4;
    cfg.max_concurrent = 2;
    serve::SessionManager mgr(cfg);

    const auto a = mgr.submit(rollback_session(seed));
    const auto b = mgr.submit(commit_session(seed ^ 0x55));
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);

    const pipeline::RunResult* ra = mgr.wait(a.id);
    const pipeline::RunResult* rb = mgr.wait(b.id);
    ASSERT_NE(ra, nullptr) << "seed " << seed;
    ASSERT_NE(rb, nullptr) << "seed " << seed;

    // Both outputs are correct regardless of speculation outcome.
    pipeline::verify_roundtrip(*ra);
    pipeline::verify_roundtrip(*rb);

    // The zero-tolerance session rolled back; the infinite-tolerance one
    // committed untouched — its epoch space and wait buffer never saw the
    // neighbor's revocations.
    EXPECT_GE(ra->rollbacks, 1u) << "seed " << seed;
    EXPECT_TRUE(rb->spec_committed) << "seed " << seed;
    EXPECT_EQ(rb->rollbacks, 0u) << "seed " << seed;
    EXPECT_EQ(rb->wait_discarded, 0u) << "seed " << seed;

    mgr.drain();

    // No cross-session residue in the shared runtime: quiescent, and every
    // epoch either committed or was fully reclaimed.
    EXPECT_TRUE(mgr.runtime().quiescent()) << "seed " << seed;
    const auto depths = mgr.runtime().queue_depths();
    EXPECT_EQ(depths.open_epochs, 0u) << "seed " << seed;
    EXPECT_EQ(depths.epoch_tasks, 0u) << "seed " << seed;

    // The chaos hook actually exercised the unlock windows.
    EXPECT_GT(chaos.decisions(), 0u) << "seed " << seed;
  }
}

TEST(MultiSessionTorture, ManySmallSessionsDrainCleanUnderChaos) {
  stress::ChaosOptions copts;
  stress::ChaosSchedule chaos(0xfeedULL, copts);
  sre::chaos::ScopedHook guard(&chaos);

  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 3;
  serve::SessionManager mgr(cfg);

  std::vector<serve::SessionId> ids;
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto sc = (i % 2 == 0) ? rollback_session(40 + i) : commit_session(40 + i);
    sc.run.bytes = 96 * 1024;
    ids.push_back(mgr.submit(std::move(sc)).id);
  }
  for (const auto id : ids) {
    const pipeline::RunResult* r = mgr.wait(id);
    ASSERT_NE(r, nullptr);
    pipeline::verify_roundtrip(*r);
  }
  mgr.drain();
  EXPECT_TRUE(mgr.runtime().quiescent());
  const auto depths = mgr.runtime().queue_depths();
  EXPECT_EQ(depths.open_epochs, 0u);
  EXPECT_EQ(depths.epoch_tasks, 0u);
}

}  // namespace
