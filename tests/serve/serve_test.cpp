// Serving layer: admission control, shed policy, lifecycle and the
// concurrent-vs-sequential identity guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "huffman/stream_format.h"
#include "metrics/registry.h"
#include "pipeline/driver.h"
#include "pipeline/run_config.h"
#include "serve/admission.h"
#include "serve/session.h"
#include "serve/session_manager.h"
#include "serve/shed_policy.h"

namespace {

using serve::AdmissionController;
using serve::Priority;
using serve::SessionConfig;
using serve::SessionManager;
using serve::SessionPtr;
using serve::SessionState;
using serve::ShedPolicy;

SessionConfig small_session(std::uint64_t seed, sre::DispatchPolicy policy) {
  SessionConfig sc;
  sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Txt, policy);
  sc.run.bytes = 64 * 1024;
  sc.run.seed = seed;
  return sc;
}

SessionPtr make_session(serve::SessionId id, Priority p,
                        std::uint64_t submitted_us,
                        std::uint64_t deadline_us = 0) {
  SessionConfig sc = small_session(id, sre::DispatchPolicy::NonSpeculative);
  sc.priority = p;
  sc.queue_deadline_us = deadline_us;
  return std::make_shared<serve::Session>(id, std::move(sc), submitted_us);
}

// --- ShedPolicy -------------------------------------------------------------

TEST(ShedPolicy, ShedsWhenPriorityQueueFull) {
  ShedPolicy::Config cfg;
  cfg.queue_capacity = {2, 2, 2};
  const ShedPolicy policy(cfg);
  EXPECT_FALSE(policy.at_submit(Priority::Batch, 1, 1).shed);
  const auto d = policy.at_submit(Priority::Batch, 2, 2);
  EXPECT_TRUE(d.shed);
  EXPECT_STREQ(d.reason, "queue_full");
}

TEST(ShedPolicy, SoftCapSparesInteractive) {
  ShedPolicy::Config cfg;
  cfg.global_soft_cap = 4;
  const ShedPolicy policy(cfg);
  // Non-interactive work is displaced past the global cap...
  const auto batch = policy.at_submit(Priority::Batch, 0, 4);
  EXPECT_TRUE(batch.shed);
  EXPECT_STREQ(batch.reason, "soft_cap");
  EXPECT_TRUE(policy.at_submit(Priority::Bulk, 0, 4).shed);
  // ...but interactive sessions still use the remaining headroom.
  EXPECT_FALSE(policy.at_submit(Priority::Interactive, 0, 4).shed);
}

TEST(ShedPolicy, DeadlineUsesOverrideThenPerPriorityDefault) {
  ShedPolicy::Config cfg;
  cfg.queue_deadline_us = {100, 200, 0};
  const ShedPolicy policy(cfg);

  const auto defaulted = make_session(1, Priority::Batch, 0);
  EXPECT_FALSE(policy.expired(*defaulted, 200));
  EXPECT_TRUE(policy.expired(*defaulted, 201));

  const auto overridden = make_session(2, Priority::Batch, 0, /*deadline=*/50);
  EXPECT_TRUE(policy.expired(*overridden, 51));

  // Priority with deadline 0 and no override never expires.
  const auto bulk = make_session(3, Priority::Bulk, 0);
  EXPECT_FALSE(policy.expired(*bulk, 1u << 30));
}

// --- AdmissionController ----------------------------------------------------

TEST(Admission, PopsInStrictPriorityOrderFifoWithin) {
  AdmissionController ac{ShedPolicy({})};
  ASSERT_TRUE(ac.offer(make_session(1, Priority::Bulk, 0)).queued);
  ASSERT_TRUE(ac.offer(make_session(2, Priority::Interactive, 0)).queued);
  ASSERT_TRUE(ac.offer(make_session(3, Priority::Batch, 0)).queued);
  ASSERT_TRUE(ac.offer(make_session(4, Priority::Interactive, 0)).queued);
  EXPECT_EQ(ac.queued(), 4u);

  std::vector<SessionPtr> shed;
  std::vector<serve::SessionId> order;
  while (auto s = ac.next(0, shed)) order.push_back(s->id);
  EXPECT_EQ(order, (std::vector<serve::SessionId>{2, 4, 3, 1}));
  EXPECT_TRUE(shed.empty());
  EXPECT_EQ(ac.queued(), 0u);
}

TEST(Admission, BoundedQueueShedsAtCapacity) {
  ShedPolicy::Config cfg;
  cfg.queue_capacity = {1, 1, 1};
  AdmissionController ac{ShedPolicy(cfg)};
  ASSERT_TRUE(ac.offer(make_session(1, Priority::Batch, 0)).queued);
  const auto rejected = ac.offer(make_session(2, Priority::Batch, 0));
  EXPECT_FALSE(rejected.queued);
  EXPECT_STREQ(rejected.shed_reason, "queue_full");
  // A different priority class has its own queue.
  EXPECT_TRUE(ac.offer(make_session(3, Priority::Bulk, 0)).queued);
}

TEST(Admission, CloseShedsNewOffersButDrainsQueued) {
  AdmissionController ac{ShedPolicy({})};
  ASSERT_TRUE(ac.offer(make_session(1, Priority::Batch, 0)).queued);
  ac.close();
  const auto rejected = ac.offer(make_session(2, Priority::Batch, 0));
  EXPECT_FALSE(rejected.queued);
  EXPECT_STREQ(rejected.shed_reason, "shutdown");
  std::vector<SessionPtr> shed;
  const auto s = ac.next(0, shed);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->id, 1u);
}

TEST(Admission, ExpiredSessionsAreShedNotServed) {
  ShedPolicy::Config cfg;
  cfg.queue_deadline_us = {0, 100, 0};
  AdmissionController ac{ShedPolicy(cfg)};
  ASSERT_TRUE(ac.offer(make_session(1, Priority::Batch, /*submitted=*/0)).queued);
  ASSERT_TRUE(
      ac.offer(make_session(2, Priority::Batch, /*submitted=*/500)).queued);

  // At t=550 session 1 has waited 550 µs (past its 100 µs deadline) while
  // session 2 has only waited 50 µs — the pop must skip 1 and serve 2.
  std::vector<SessionPtr> shed;
  const auto s = ac.next(550, shed);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->id, 2u);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0]->id, 1u);
}

TEST(Admission, PurgeExpiredSweepsAllQueues) {
  ShedPolicy::Config cfg;
  cfg.queue_deadline_us = {10, 10, 10};
  AdmissionController ac{ShedPolicy(cfg)};
  ASSERT_TRUE(ac.offer(make_session(1, Priority::Interactive, 0)).queued);
  ASSERT_TRUE(ac.offer(make_session(2, Priority::Batch, 0)).queued);
  ASSERT_TRUE(ac.offer(make_session(3, Priority::Bulk, 100)).queued);
  std::vector<SessionPtr> shed;
  EXPECT_EQ(ac.purge_expired(50, shed), 2u);
  EXPECT_EQ(shed.size(), 2u);
  EXPECT_EQ(ac.queued(), 1u);
}

// --- SessionManager ---------------------------------------------------------

TEST(SessionManager, SessionsCompleteAndRoundtrip) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 2;
  SessionManager mgr(cfg);

  std::vector<serve::SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto out =
        mgr.submit(small_session(seed, sre::DispatchPolicy::Balanced));
    EXPECT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (const auto id : ids) {
    const pipeline::RunResult* r = mgr.wait(id);
    ASSERT_NE(r, nullptr);
    pipeline::verify_roundtrip(*r);
    const auto st = mgr.stats(id);
    EXPECT_EQ(st.state, SessionState::Done);
    EXPECT_GE(st.done_us, st.admitted_us);
    EXPECT_GE(st.admitted_us, st.submitted_us);
    EXPECT_GT(st.latency_us(), 0u);
  }
  mgr.drain();
  EXPECT_TRUE(mgr.runtime().quiescent());
  const auto sessions = mgr.all_sessions();
  EXPECT_EQ(sessions.size(), ids.size());
}

TEST(SessionManager, ZeroCapacityQueueShedsEverySubmit) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.shed.queue_capacity = {0, 0, 0};
  SessionManager mgr(cfg);
  const auto out =
      mgr.submit(small_session(1, sre::DispatchPolicy::NonSpeculative));
  EXPECT_FALSE(out.accepted);
  EXPECT_EQ(out.shed_reason, "queue_full");
  EXPECT_EQ(mgr.wait(out.id), nullptr);
  const auto st = mgr.stats(out.id);
  EXPECT_EQ(st.state, SessionState::Shed);
  EXPECT_EQ(st.shed_reason, "queue_full");
  mgr.drain();
}

TEST(SessionManager, DrainRefusesNewWorkButFinishesAccepted) {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 1;
  SessionManager mgr(cfg);
  const auto a =
      mgr.submit(small_session(1, sre::DispatchPolicy::NonSpeculative));
  const auto b =
      mgr.submit(small_session(2, sre::DispatchPolicy::NonSpeculative));
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  mgr.drain();
  // Everything accepted before the drain still completed...
  EXPECT_NE(mgr.wait(a.id), nullptr);
  EXPECT_NE(mgr.wait(b.id), nullptr);
  // ...and post-drain submissions are refused, not queued forever.
  const auto late =
      mgr.submit(small_session(3, sre::DispatchPolicy::NonSpeculative));
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.shed_reason, "shutdown");
}

TEST(SessionManager, WaitOnUnknownIdReturnsNull) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  SessionManager mgr(cfg);
  EXPECT_EQ(mgr.wait(12345), nullptr);
  mgr.drain();
}

TEST(SessionManager, ConcurrentMatchesSequentialByteForByte) {
  // The acceptance-criteria anchor: identical NonSpeculative configs produce
  // identical containers whether they share the fleet or run one at a time.
  const std::size_t kSessions = 4;
  auto run_with_window = [&](std::size_t window) {
    serve::ServiceConfig cfg;
    cfg.workers = 8;
    cfg.max_concurrent = window;
    SessionManager mgr(cfg);
    std::vector<serve::SessionId> ids;
    for (std::size_t i = 0; i < kSessions; ++i) {
      ids.push_back(
          mgr.submit(small_session(100 + i, sre::DispatchPolicy::NonSpeculative))
              .id);
    }
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto id : ids) {
      const pipeline::RunResult* r = mgr.wait(id);
      EXPECT_NE(r, nullptr);
      if (r != nullptr) out.push_back(r->container);
    }
    mgr.drain();
    return out;
  };
  const auto concurrent = run_with_window(kSessions);
  const auto sequential = run_with_window(1);
  ASSERT_EQ(concurrent.size(), kSessions);
  ASSERT_EQ(sequential.size(), kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(concurrent[i], sequential[i]) << "session " << i;
  }
}

TEST(SessionManager, FailedSessionReportsErrorAndFreesSlot) {
  // An unreadable input used to throw on the manager thread and
  // std::terminate the whole service; it must instead fail just that
  // session and keep serving.
  metrics::Registry reg;
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_concurrent = 1;
  cfg.registry = &reg;
  SessionManager mgr(cfg);

  SessionConfig bad = small_session(1, sre::DispatchPolicy::NonSpeculative);
  bad.run.input_path = testing::TempDir() + "/tvs-no-such-input.bin";
  const auto b = mgr.submit(std::move(bad));
  ASSERT_TRUE(b.accepted);
  const auto g =
      mgr.submit(small_session(2, sre::DispatchPolicy::NonSpeculative));
  ASSERT_TRUE(g.accepted);

  EXPECT_EQ(mgr.wait(b.id), nullptr);
  const auto st = mgr.stats(b.id);
  EXPECT_EQ(st.state, SessionState::Failed);
  EXPECT_FALSE(st.error.empty());
  EXPECT_TRUE(st.shed_reason.empty());

  // The single concurrency slot freed: the good session still completes.
  const pipeline::RunResult* r = mgr.wait(g.id);
  ASSERT_NE(r, nullptr);
  pipeline::verify_roundtrip(*r);

  mgr.drain();
  EXPECT_TRUE(mgr.runtime().quiescent());
  EXPECT_EQ(reg.snapshot().scalar("serve_sessions_failed_total"), 1.0);
}

TEST(SessionManager, EmptyInputCompletesWithValidEmptyContainer) {
  const std::string path = testing::TempDir() + "/tvs-empty-input.bin";
  huff::write_file(path, {});

  serve::ServiceConfig cfg;
  cfg.workers = 2;
  SessionManager mgr(cfg);
  SessionConfig sc = small_session(1, sre::DispatchPolicy::Balanced);
  sc.run.input_path = path;
  const auto out = mgr.submit(std::move(sc));
  ASSERT_TRUE(out.accepted);

  const pipeline::RunResult* r = mgr.wait(out.id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->input.empty());
  EXPECT_EQ(r->output_bits, 0u);
  EXPECT_TRUE(huff::decompress_buffer(r->container).empty());
  EXPECT_EQ(mgr.stats(out.id).state, SessionState::Done);
  mgr.drain();
  EXPECT_TRUE(mgr.runtime().quiescent());
}

TEST(SessionManager, ReleaseDropsResultButKeepsStats) {
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  SessionManager mgr(cfg);
  const auto out =
      mgr.submit(small_session(3, sre::DispatchPolicy::NonSpeculative));
  ASSERT_TRUE(out.accepted);
  EXPECT_FALSE(mgr.release(out.id));  // not terminal yet
  ASSERT_NE(mgr.wait(out.id), nullptr);

  EXPECT_TRUE(mgr.release(out.id));
  EXPECT_EQ(mgr.wait(out.id), nullptr);  // result gone...
  const auto st = mgr.stats(out.id);     // ...stats retained
  EXPECT_EQ(st.state, SessionState::Done);
  EXPECT_GT(st.latency_us(), 0u);
  EXPECT_EQ(mgr.all_sessions().size(), 1u);

  EXPECT_FALSE(mgr.release(12345));  // unknown id
  mgr.drain();
}

TEST(SessionManager, ServingMetricsLandInRegistry) {
  metrics::Registry reg;
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.registry = &reg;
  cfg.per_session_metrics = true;
  SessionManager mgr(cfg);
  SessionConfig sc = small_session(7, sre::DispatchPolicy::Balanced);
  sc.name = "alpha";
  const auto out = mgr.submit(std::move(sc));
  ASSERT_TRUE(out.accepted);
  ASSERT_NE(mgr.wait(out.id), nullptr);
  mgr.drain();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.scalar("serve_sessions_submitted_total"), 1.0);
  EXPECT_EQ(snap.scalar("serve_sessions_done_total"), 1.0);
  EXPECT_GT(snap.scalar("serve_session_latency_us", "session=\"alpha\""), 0.0);
  bool have_latency_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "serve_latency_us") {
      have_latency_hist = h.totals.count == 1;
    }
  }
  EXPECT_TRUE(have_latency_hist);
}

TEST(SessionManager, ToStringCoversAllStates) {
  EXPECT_EQ(serve::to_string(Priority::Interactive), "interactive");
  EXPECT_EQ(serve::to_string(Priority::Batch), "batch");
  EXPECT_EQ(serve::to_string(Priority::Bulk), "bulk");
  EXPECT_EQ(serve::to_string(SessionState::Queued), "queued");
  EXPECT_EQ(serve::to_string(SessionState::Admitted), "admitted");
  EXPECT_EQ(serve::to_string(SessionState::Running), "running");
  EXPECT_EQ(serve::to_string(SessionState::Draining), "draining");
  EXPECT_EQ(serve::to_string(SessionState::Done), "done");
  EXPECT_EQ(serve::to_string(SessionState::Shed), "shed");
  EXPECT_EQ(serve::to_string(SessionState::Failed), "failed");
}

}  // namespace
