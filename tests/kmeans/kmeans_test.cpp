// Lloyd's k-means substrate.
#include "kmeans/kmeans.h"

#include <gtest/gtest.h>

namespace {

using km::Centroids;
using km::Dataset;

Dataset tiny() {
  // Two obvious clusters on a line: {0, 0.1, 0.2} and {10, 10.1, 10.2}.
  Dataset d;
  d.dims = 1;
  d.values = {0.0, 10.0, 0.1, 10.1, 0.2, 10.2};
  return d;
}

TEST(Kmeans, MakeBlobsDeterministicAndSized) {
  const Dataset a = km::make_blobs(1000, 4, 5, 42);
  const Dataset b = km::make_blobs(1000, 4, 5, 42);
  const Dataset c = km::make_blobs(1000, 4, 5, 43);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.dims, 4u);
  EXPECT_EQ(a.values, b.values);
  EXPECT_NE(a.values, c.values);
  EXPECT_THROW(km::make_blobs(10, 0, 2, 1), std::invalid_argument);
}

TEST(Kmeans, NearestPicksClosestCentroid) {
  Centroids c;
  c.dims = 2;
  c.values = {0.0, 0.0, 5.0, 5.0};
  const std::vector<double> near_first = {1.0, 1.0};
  const std::vector<double> near_second = {4.0, 6.0};
  EXPECT_EQ(km::nearest(c, near_first), 0u);
  EXPECT_EQ(km::nearest(c, near_second), 1u);
}

TEST(Kmeans, SolveSeparatesObviousClusters) {
  const Dataset d = tiny();
  const Centroids c = km::solve(d, 2, 10);
  // One centroid near 0.1, the other near 10.1 (order depends on init).
  const double c0 = c.centroid(0)[0];
  const double c1 = c.centroid(1)[0];
  const double lo = std::min(c0, c1);
  const double hi = std::max(c0, c1);
  EXPECT_NEAR(lo, 0.1, 1e-9);
  EXPECT_NEAR(hi, 10.1, 1e-9);
  // All points of each cluster share a label.
  const auto labels = km::label(c, d, 0, d.size());
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_EQ(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(Kmeans, LloydStepNeverIncreasesInertia) {
  const Dataset d = km::make_blobs(2000, 3, 6, 7);
  Centroids c = km::init_centroids(d, 6);
  double prev = km::inertia(c, d);
  for (int i = 0; i < 12; ++i) {
    c = km::lloyd_step(c, d);
    const double cur = km::inertia(c, d);
    EXPECT_LE(cur, prev + 1e-9) << "Lloyd iteration " << i;
    prev = cur;
  }
}

TEST(Kmeans, ConvergedStepIsFixedPoint) {
  const Dataset d = km::make_blobs(1500, 2, 4, 9);
  Centroids c = km::solve(d, 4, 60);
  const Centroids next = km::lloyd_step(c, d);
  EXPECT_EQ(next, c);
}

TEST(Kmeans, EmptyClusterKeepsCentroid) {
  Dataset d;
  d.dims = 1;
  d.values = {0.0, 0.1};
  Centroids c;
  c.dims = 1;
  c.values = {0.05, 99.0};  // second centroid captures nothing
  const Centroids next = km::lloyd_step(c, d);
  EXPECT_DOUBLE_EQ(next.centroid(1)[0], 99.0);
}

TEST(Kmeans, AssignmentDisagreementBounds) {
  const Dataset d = km::make_blobs(1000, 3, 5, 11);
  const Centroids a = km::solve(d, 5, 20);
  EXPECT_DOUBLE_EQ(km::assignment_disagreement(a, a, d), 0.0);
  Centroids shifted = a;
  for (auto& v : shifted.values) v += 100.0;  // everything reassigns weirdly
  const double dis = km::assignment_disagreement(a, shifted, d);
  EXPECT_GE(dis, 0.0);
  EXPECT_LE(dis, 1.0);
}

TEST(Kmeans, DisagreementShrinksAcrossIterations) {
  // The speculation precondition: later iterates disagree less with the
  // final result than early ones.
  const Dataset d = km::make_blobs(4000, 4, 6, 13, /*spread=*/0.8);
  const Centroids final_c = km::solve(d, 6, 30);
  Centroids c = km::init_centroids(d, 6);
  double prev = 2.0;
  for (int i = 0; i < 8; ++i) {
    c = km::lloyd_step(c, d);
    const double dis = km::assignment_disagreement(c, final_c, d);
    EXPECT_LE(dis, prev + 0.05) << i;  // mostly decreasing
    prev = dis;
  }
  EXPECT_LT(prev, 0.02);
}

TEST(Kmeans, InitValidates) {
  const Dataset d = km::make_blobs(5, 2, 2, 1);
  EXPECT_THROW(km::init_centroids(d, 6), std::invalid_argument);
  EXPECT_THROW(km::init_centroids(d, 0), std::invalid_argument);
}

}  // namespace
