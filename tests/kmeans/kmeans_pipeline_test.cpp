// Speculative k-means pipeline end-to-end on both executors.
#include "kmeans/kmeans_pipeline.h"

#include <gtest/gtest.h>

#include "sim/sim_executor.h"
#include "sre/threaded_executor.h"

namespace {

using km::Dataset;
using km::KmeansPipeline;
using km::KmeansPipelineConfig;

Dataset dataset() { return km::make_blobs(64 * 1024, 4, 8, 21); }

KmeansPipelineConfig config(double tolerance) {
  KmeansPipelineConfig cfg;
  cfg.k = 8;
  cfg.iterations = 15;
  cfg.sample_points = 2048;
  cfg.block_points = 4096;
  cfg.spec.tolerance = tolerance;
  cfg.spec.step_size = 1;
  cfg.spec.verify = tvs::VerificationPolicy::every_kth(4);
  return cfg;
}

TEST(KmeansPipeline, NaturalPathMatchesSerialReference) {
  const Dataset data = dataset();
  const auto cfg = config(0.05);
  sre::Runtime rt(sre::DispatchPolicy::NonSpeculative);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
  KmeansPipeline pl(rt, data, cfg, /*speculation=*/false);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_FALSE(pl.speculation_committed());

  Dataset sample;
  sample.dims = data.dims;
  sample.values.assign(data.values.begin(),
                       data.values.begin() + 2048 * 4);
  const auto ref = km::solve(sample, cfg.k, cfg.iterations);
  EXPECT_EQ(pl.committed_centroids(), ref);
  EXPECT_EQ(pl.labels(), km::label(ref, data, 0, data.size()));
}

TEST(KmeansPipeline, SpeculationCommitsOnWellSeparatedData) {
  // Well-separated blobs: assignments stabilize after very few Lloyd
  // sweeps, so the early guess survives every check.
  const Dataset data = dataset();
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
  KmeansPipeline pl(rt, data, config(0.02), /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_TRUE(pl.speculation_committed());
  // Labels must be the labelling of the committed centroids.
  EXPECT_EQ(pl.labels(),
            km::label(pl.committed_centroids(), data, 0, data.size()));
}

TEST(KmeansPipeline, ZeroToleranceForcesRollbackOnNoisyData) {
  // Overlapping blobs + zero tolerance: the first-iterate guess must fail
  // a check, and the run must still complete correctly.
  const Dataset data = km::make_blobs(32 * 1024, 4, 8, 33, /*spread=*/1.6);
  auto cfg = config(0.0);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
  KmeansPipeline pl(rt, data, cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_GE(pl.rollbacks(), 1u);
  EXPECT_EQ(pl.labels(),
            km::label(pl.committed_centroids(), data, 0, data.size()));
}

TEST(KmeansPipeline, SpeculationShortensMakespan) {
  const Dataset data = dataset();
  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    KmeansPipeline pl(rt, data, config(0.02), speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return ex.makespan_us();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(KmeansPipeline, ThreadedExecutorAgrees) {
  const Dataset data = km::make_blobs(16 * 1024, 3, 5, 8);
  auto cfg = config(0.02);
  cfg.k = 5;
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sre::ThreadedExecutor ex(rt, {.workers = 4});
  KmeansPipeline pl(rt, data, cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_EQ(pl.labels(),
            km::label(pl.committed_centroids(), data, 0, data.size()));
  EXPECT_TRUE(pl.trace().complete());
}

TEST(KmeansPipeline, ValidatesConfig) {
  const Dataset data = km::make_blobs(100, 2, 2, 1);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  auto cfg = config(0.1);
  cfg.k = 0;
  EXPECT_THROW(KmeansPipeline(rt, data, cfg, true), std::invalid_argument);
  cfg = config(0.1);
  cfg.sample_points = 4;
  cfg.k = 8;
  EXPECT_THROW(KmeansPipeline(rt, data, cfg, true), std::invalid_argument);
  Dataset empty;
  empty.dims = 2;
  EXPECT_THROW(KmeansPipeline(rt, empty, config(0.1), true),
               std::invalid_argument);
}

}  // namespace
