// src/predict unit tests: the predictor zoo on scalar/vector/histogram
// streams, and the bank's racing, selection, scoring and rollback charging.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "predict/bank.h"
#include "predict/ewma.h"
#include "predict/histogram_morph.h"
#include "predict/last_value.h"
#include "predict/predictor.h"
#include "predict/stride.h"

namespace {

using predict::Ewma;
using predict::HistogramMorph;
using predict::LastValue;
using predict::Prediction;
using predict::PredictorBank;
using predict::Stride;

TEST(LastValue, PredictsNewestObservation) {
  LastValue<double> p;
  EXPECT_EQ(p.observations(), 0u);
  EXPECT_DOUBLE_EQ(p.predict(5).confidence, 0.0);
  p.observe(1, 10.0);
  p.observe(2, 12.0);
  const auto pred = p.predict(9);
  EXPECT_DOUBLE_EQ(pred.guess, 12.0);
  EXPECT_EQ(p.observations(), 2u);
}

TEST(LastValue, ConfidenceTracksStability) {
  LastValue<double> p;
  p.observe(1, 100.0);
  p.observe(2, 100.0);
  EXPECT_GT(p.predict(3).confidence, 0.99) << "unchanged value = certainty";
  LastValue<double> q;
  q.observe(1, 100.0);
  q.observe(2, 10.0);
  EXPECT_LT(q.predict(3).confidence, 0.2) << "wild swing = no confidence";
}

TEST(Stride, ExtrapolatesLinearSequencesExactly) {
  Stride<std::vector<double>> p;
  // v_k = (3k, -k): perfectly linear per component.
  for (std::uint32_t k = 1; k <= 4; ++k) {
    p.observe(k, {3.0 * k, -1.0 * k});
  }
  const auto pred = p.predict(10);
  ASSERT_EQ(pred.guess.size(), 2u);
  EXPECT_NEAR(pred.guess[0], 30.0, 1e-9);
  EXPECT_NEAR(pred.guess[1], -10.0, 1e-9);
  EXPECT_GT(pred.confidence, 0.99) << "consistent strides = certainty";
}

TEST(Stride, HandlesIndexGapsAndFallsBackEarly) {
  Stride<double> p;
  p.observe(2, 10.0);
  const auto one = p.predict(8);
  EXPECT_DOUBLE_EQ(one.guess, 10.0) << "one observation: repeat it";
  p.observe(6, 30.0);  // delta = 5 per index over a gap of 4
  EXPECT_NEAR(p.predict(8).guess, 40.0, 1e-9);
}

TEST(Ewma, SmoothsOutliers) {
  Ewma<double> p(0.5);
  p.observe(1, 100.0);
  p.observe(2, 100.0);
  p.observe(3, 160.0);  // outlier
  const auto pred = p.predict(4);
  EXPECT_GT(pred.guess, 100.0);
  EXPECT_LT(pred.guess, 160.0) << "the spike is damped, not adopted";
}

TEST(HistogramMorph, ScalesPrefixTowardAsymptote) {
  // Stationary stream: prefix after 4 of 16 reduces holds 1/4 of the data.
  huff::Histogram prefix;
  prefix.at('a') = 300;
  prefix.at('b') = 100;
  HistogramMorph p;
  p.observe(2, [] {
    huff::Histogram h;
    h.at('a') = 150;
    h.at('b') = 50;
    return h;
  }());
  p.observe(4, prefix);
  const auto pred = p.predict(16);
  EXPECT_EQ(pred.guess.at('a'), 1200u);
  EXPECT_EQ(pred.guess.at('b'), 400u);
  EXPECT_GT(pred.confidence, 0.95) << "identical shapes = stationary";
}

TEST(HistogramMorph, DriftingShapeLowersConfidence) {
  HistogramMorph p;
  huff::Histogram h1;
  h1.at('a') = 100;
  p.observe(1, h1);
  huff::Histogram h2 = h1;
  h2.at('z') = 100;  // half the new mass is a brand-new symbol
  p.observe(2, h2);
  EXPECT_LT(p.predict(8).confidence, 0.5);
}

TEST(HistogramMorph, ValueTraitsRoundTrips) {
  huff::Histogram h;
  h.at(0) = 7;
  h.at(255) = 123456789;
  std::vector<double> flat;
  predict::ValueTraits<huff::Histogram>::flatten(h, flat);
  ASSERT_EQ(flat.size(), huff::kSymbols);
  const auto back =
      predict::ValueTraits<huff::Histogram>::unflatten(h, flat);
  EXPECT_EQ(back, h);
}

TEST(GenericPredictorsWorkOnHistograms, StrideExtrapolatesCounts) {
  Stride<huff::Histogram> p;
  for (std::uint32_t k = 1; k <= 3; ++k) {
    huff::Histogram h;
    h.at('x') = 100 * k;
    p.observe(k, h);
  }
  EXPECT_EQ(p.predict(10).guess.at('x'), 1000u);
}

// --- PredictorBank -------------------------------------------------------

std::unique_ptr<PredictorBank<double>> make_bank(double tol) {
  auto bank = std::make_unique<PredictorBank<double>>(tol);
  bank->add(std::make_unique<LastValue<double>>());
  bank->add(std::make_unique<Stride<double>>());
  bank->add(std::make_unique<Ewma<double>>());
  return bank;
}

TEST(PredictorBank, ThrowsWithoutPredictors) {
  PredictorBank<double> bank(0.1);
  EXPECT_THROW(bank.observe(1, 1.0), std::logic_error);
}

TEST(PredictorBank, StrideWinsOnLinearStreams) {
  auto bankp = make_bank(0.01);  // 1% tolerance: LastValue keeps missing
  auto& bank = *bankp;
  for (std::uint32_t k = 1; k <= 10; ++k) {
    bank.observe(k, 10.0 * k);
  }
  EXPECT_EQ(bank.best_name(), "stride");
  const auto board = bank.scoreboard();
  const auto* stride = board.find("stride");
  const auto* last = board.find("last-value");
  ASSERT_NE(stride, nullptr);
  ASSERT_NE(last, nullptr);
  EXPECT_GT(stride->hit_rate(), last->hit_rate());
  EXPECT_NEAR(bank.predict(20).guess, 200.0, 1e-9);
}

TEST(PredictorBank, LastValueIsTheDefaultBeforeEvidence) {
  auto bankp = make_bank(0.1);
  auto& bank = *bankp;
  bank.observe(1, 5.0);
  EXPECT_EQ(bank.best_name(), "last-value")
      << "registration order breaks the no-evidence tie";
  EXPECT_DOUBLE_EQ(bank.predict(10).guess, 5.0);
}

TEST(PredictorBank, ScoresCountHitsUnderTolerance) {
  auto bankp = make_bank(0.5);
  auto& bank = *bankp;
  bank.observe(1, 100.0);
  bank.observe(2, 101.0);  // every predictor's one-step guess is within 50%
  const auto board = bank.scoreboard();
  const auto* last = board.find("last-value");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->scored, 1u);
  EXPECT_EQ(last->hits, 1u);
  EXPECT_NEAR(last->mean_rel_error(), 1.0 / 101.0, 1e-6);
}

TEST(PredictorBank, ChargesRollbackToTheSupplier) {
  auto bankp = make_bank(0.1);
  auto& bank = *bankp;
  bank.observe(1, 1.0);
  bank.observe(2, 2.0);
  (void)bank.predict(10);  // the adopted guess comes from the current best
  const std::string supplier = bank.best_name();
  EXPECT_EQ(bank.charge_rollback(), supplier);
  const auto board = bank.scoreboard();
  ASSERT_NE(board.find(supplier), nullptr);
  EXPECT_EQ(board.find(supplier)->rollbacks_charged, 1u);
  EXPECT_EQ(board.find(supplier)->guesses_supplied, 1u);
}

TEST(PredictorBank, ScoreHookSeesEveryJudgement) {
  auto bankp = make_bank(0.1);
  auto& bank = *bankp;
  std::vector<std::string> seen;
  bank.set_score_hook([&seen](const std::string& name, bool, double) {
    seen.push_back(name);
  });
  bank.observe(1, 1.0);
  EXPECT_TRUE(seen.empty()) << "nothing to score on the first estimate";
  bank.observe(2, 1.0);
  EXPECT_EQ(seen.size(), 3u) << "all three predictors scored";
}

TEST(PredictorBank, ResetForgetsEverything) {
  auto bankp = make_bank(0.1);
  auto& bank = *bankp;
  for (std::uint32_t k = 1; k <= 5; ++k) bank.observe(k, 2.0 * k);
  bank.reset();
  const auto board = bank.scoreboard();
  for (const auto& row : board.rows()) {
    EXPECT_EQ(row.scored, 0u);
    EXPECT_EQ(row.rollbacks_charged, 0u);
  }
  EXPECT_EQ(bank.best_name(), "last-value");
}

TEST(PredictorBank, ConfidenceBlendsModelAndRecord) {
  auto bankp = make_bank(1e-12);
  auto& bank = *bankp;  // impossible tolerance: every score misses
  for (std::uint32_t k = 1; k <= 8; ++k) {
    // Near-stationary (model confident) but non-linear, so no predictor
    // can clear the impossible tolerance exactly.
    bank.observe(k, 100.0 + 0.001 * ((k * k) % 7));
  }
  // Model confidence alone would be ~1; the 0% hit rate must drag the
  // blended confidence down to ~0.5.
  EXPECT_LT(bank.confidence(16), 0.75);
}

TEST(Scoreboard, BestUsesLaplaceSmoothing) {
  stats::PredictorScoreboard board;
  board.record_score("lucky", true, 0.0);  // 1/1 raw
  for (int i = 0; i < 20; ++i) board.record_score("steady", true, 0.01);
  board.record_score("steady", false, 0.5);  // 20/21 raw
  EXPECT_EQ(board.best(), "steady")
      << "one lucky hit must not beat a long record";
  EXPECT_FALSE(board.to_string().empty());
}

}  // namespace
