// Flight recorder: ring and interner invariants, the TVSF binary format,
// exporters on hostile inputs (aborted-epoch-only traces, sessions shed
// while still Queued, out-of-range name ids), and the serving layer's
// automatic post-mortem path end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flight/export.h"
#include "flight/interner.h"
#include "flight/record.h"
#include "flight/recorder.h"
#include "flight/ring.h"
#include "pipeline/driver.h"
#include "pipeline/run_config.h"
#include "serve/session_manager.h"
#include "stress/chaos_schedule.h"
#include "support/json_lite.h"

namespace {

flight::Record make_record(flight::Kind kind, std::uint64_t t_us = 0,
                           std::uint64_t stream = 0, std::uint64_t task = 0,
                           std::uint32_t epoch = 0, std::uint32_t name = 0) {
  flight::Record r;
  r.kind = kind;
  r.t_us = t_us;
  r.stream = stream;
  r.task = task;
  r.epoch = epoch;
  r.name = name;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::string fresh_dir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / "tvs_flight_test" /
                   leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- Ring -------------------------------------------------------------------

TEST(FlightRing, RoundTripsRecordsInOrder) {
  flight::Ring ring(8);
  EXPECT_TRUE(ring.empty());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.push(make_record(flight::Kind::TaskCreated, i, 0, i)));
  }
  std::vector<flight::Record> out;
  EXPECT_EQ(ring.pop_into(out, 100), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].task, i);
  EXPECT_TRUE(ring.empty());
}

TEST(FlightRing, DropsWhenFullNeverBlocks) {
  flight::Ring ring(4);  // rounds to capacity 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.push(make_record(flight::Kind::None)));
  }
  EXPECT_FALSE(ring.push(make_record(flight::Kind::None)));
  std::vector<flight::Record> out;
  EXPECT_EQ(ring.pop_into(out, 2), 2u);  // partial drain frees space
  EXPECT_TRUE(ring.push(make_record(flight::Kind::None)));
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(flight::Ring(0).capacity(), 2u);
  EXPECT_EQ(flight::Ring(3).capacity(), 4u);
  EXPECT_EQ(flight::Ring(8).capacity(), 8u);
  EXPECT_EQ(flight::Ring(9).capacity(), 16u);
}

// --- Interner ---------------------------------------------------------------

TEST(FlightInterner, DistinctNamesNeverShareIds) {
  flight::NameInterner interner;
  // Names engineered to be collision-prone in weak hash schemes: shared
  // prefixes, permutations, embedded NULs' neighbors.
  const std::vector<std::string> names = {
      "count",  "count[0]",  "count[1]",  "tnuoc",    "encode",
      "encodE", "en" "code", "x",         "xx",       "xxx",
      "",       " ",         "predictor", "predictor:last_value"};
  std::set<std::uint32_t> ids;
  for (const auto& n : names) ids.insert(interner.intern(n));
  EXPECT_EQ(ids.size(), names.size() - 1);  // "" is the pre-seeded id 0
  // Round-trip and stability: re-interning returns the same id.
  for (const auto& n : names) {
    const auto id = interner.intern(n);
    EXPECT_EQ(interner.name(id), n);
    EXPECT_EQ(interner.intern(n), id);
  }
  EXPECT_EQ(interner.intern(""), 0u);
}

// --- TVSF binary format -----------------------------------------------------

TEST(FlightBinary, RoundTripsRecordsAndNames) {
  std::vector<flight::Record> records;
  records.push_back(make_record(flight::Kind::TaskCreated, 10, 1, 7, 0, 2));
  records.push_back(make_record(flight::Kind::EpochAborted, 20, 0, 0, 3));
  records.back().flags = flight::kFlagAborted;
  const std::vector<std::string> names = {"", "count", "encode"};

  const std::string bytes = flight::write_binary(records, names);
  const flight::Dump dump = flight::read_binary(bytes);
  EXPECT_EQ(dump.names, names);
  ASSERT_EQ(dump.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(dump.records[i].kind, records[i].kind);
    EXPECT_EQ(dump.records[i].t_us, records[i].t_us);
    EXPECT_EQ(dump.records[i].task, records[i].task);
    EXPECT_EQ(dump.records[i].flags, records[i].flags);
  }
}

TEST(FlightBinary, EveryTruncationThrowsInsteadOfCrashing) {
  const std::string bytes = flight::write_binary(
      {make_record(flight::Kind::TaskCreated, 1)}, {"", "a-name"});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)flight::read_binary(bytes.substr(0, cut)),
                 std::runtime_error)
        << "prefix of " << cut << " bytes parsed";
  }
  EXPECT_NO_THROW((void)flight::read_binary(bytes));
}

TEST(FlightBinary, RejectsBadMagicAndTrailingGarbage) {
  std::string bytes = flight::write_binary({}, {""});
  std::string corrupt = bytes;
  corrupt[0] = 'X';
  EXPECT_THROW((void)flight::read_binary(corrupt), std::runtime_error);
  EXPECT_THROW((void)flight::read_binary(bytes + "junk"), std::runtime_error);
}

// --- Chrome exporter on hostile inputs --------------------------------------

TEST(FlightChrome, EmptyWindowIsValidJson) {
  const std::string json = flight::to_chrome_trace({}, {});
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
}

TEST(FlightChrome, AbortedEpochOnlyTraceIsValid) {
  // A window that caught only the tail of a rollback: epoch records with no
  // task ever seen. The exporter must synthesize something sensible.
  std::vector<flight::Record> records;
  records.push_back(make_record(flight::Kind::EpochAborted, 50, 0, 0, 9));
  records.push_back(make_record(flight::Kind::RollbackCascade, 0, 0, 0, 9));
  records.back().a = 4;
  const std::string json = flight::to_chrome_trace(records, {""});
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("epoch"), std::string::npos);
}

TEST(FlightChrome, ShedWhileQueuedSessionHasZeroSpansButValidOutput) {
  // A session shed before admission has exactly two lifecycle edges and no
  // task, epoch or attribution records at all.
  std::vector<flight::Record> records;
  records.push_back(
      make_record(flight::Kind::SessionState, 100, 42, 0, 0, 1));
  records.push_back(
      make_record(flight::Kind::SessionState, 200, 42, 0, 0, 2));
  flight::PostMortemInfo info;
  info.session = 42;
  info.reason = "shed: queue_full";
  const std::string json =
      flight::to_chrome_trace(records, {"", "Queued", "Shed"}, &info);
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("queue_full"), std::string::npos);
}

TEST(FlightChrome, OutOfRangeNameIdsAndHostileStringsStayValid) {
  std::vector<flight::Record> records;
  records.push_back(make_record(flight::Kind::TaskCreated, 5, 1, 1, 0,
                                /*name=*/9999));  // beyond the name table
  records.push_back(make_record(flight::Kind::PredictorCharged, 6, 0, 0, 0,
                                /*name=*/1));
  // Names with every JSON-hostile byte class: quotes, backslashes, control
  // characters, non-ASCII.
  const std::vector<std::string> names = {"", "we\"ird\\na\x01me\xc3\xa9"};
  const std::string json = flight::to_chrome_trace(records, names);
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("rollback-cause"), std::string::npos);
}

// --- Causal slice -----------------------------------------------------------

TEST(FlightSlice, SessionZeroAndUnknownSessionsYieldEmptySlices) {
  std::vector<flight::Record> window;
  window.push_back(make_record(flight::Kind::TaskCreated, 1, 7, 1));
  EXPECT_TRUE(flight::session_slice(window, 0).empty());
  EXPECT_TRUE(flight::session_slice(window, 12345).empty());
}

TEST(FlightSlice, PullsEpochAndTaskClosureForTheSession) {
  std::vector<flight::Record> window;
  // Session 7's task in epoch 3, plus the epoch lifecycle and a foreign
  // session's task in another epoch.
  window.push_back(make_record(flight::Kind::TaskCreated, 10, 7, 1, 3));
  window.push_back(make_record(flight::Kind::TaskDispatched, 11, 0, 1));
  window.push_back(make_record(flight::Kind::EpochAborted, 12, 0, 0, 3));
  window.push_back(make_record(flight::Kind::TaskCreated, 10, 8, 2, 4));
  window.push_back(make_record(flight::Kind::EpochCommitted, 12, 0, 0, 4));
  window.push_back(make_record(flight::Kind::PredictorCharged, 13, 0, 0, 0, 1));
  window.push_back(make_record(flight::Kind::SessionState, 14, 7, 0, 0, 2));

  const auto slice = flight::session_slice(window, 7);
  std::multiset<flight::Kind> kinds;
  for (const auto& r : slice) {
    kinds.insert(r.kind);
    EXPECT_TRUE(r.stream != 8) << "foreign session leaked into the slice";
    EXPECT_TRUE(r.epoch != 4) << "foreign epoch leaked into the slice";
  }
  EXPECT_EQ(kinds.count(flight::Kind::TaskCreated), 1u);
  EXPECT_EQ(kinds.count(flight::Kind::TaskDispatched), 1u);
  EXPECT_EQ(kinds.count(flight::Kind::EpochAborted), 1u);
  // Global speculation decisions ride along — a post-mortem needs them.
  EXPECT_EQ(kinds.count(flight::Kind::PredictorCharged), 1u);
  EXPECT_EQ(kinds.count(flight::Kind::SessionState), 1u);
}

TEST(FlightSlice, TimeBoundDropsOldRecordsButKeepsClockless) {
  std::vector<flight::Record> window;
  window.push_back(make_record(flight::Kind::TaskDispatched, 100, 7, 1));
  window.push_back(make_record(flight::Kind::TaskDispatched, 5'000'100, 7, 2));
  window.push_back(make_record(flight::Kind::TaskCreated, 0, 7, 3));
  const auto slice = flight::session_slice(window, 7, /*last_window_us=*/1000);
  std::multiset<std::uint64_t> times;
  for (const auto& r : slice) times.insert(r.t_us);
  EXPECT_EQ(times.count(100), 0u) << "record older than the window survived";
  EXPECT_EQ(times.count(5'000'100), 1u);
  EXPECT_EQ(times.count(0), 1u) << "clock-less record must always survive";
}

// --- Recorder ---------------------------------------------------------------

TEST(FlightRecorder, EmitSnapshotAndWindowEviction) {
  flight::Recorder::Options opts;
  opts.ring_capacity = 64;
  opts.window_max_records = 16;
  flight::Recorder rec(opts);
  rec.start();
  for (std::uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(rec.emit(make_record(flight::Kind::TaskCreated, i + 1, 0, i)));
  }
  const auto window = rec.snapshot();
  EXPECT_LE(window.size(), 16u);
  ASSERT_FALSE(window.empty());
  // Eviction is from the front: the newest records survive.
  EXPECT_EQ(window.back().task, 39u);
  rec.stop();
}

TEST(FlightRecorder, FullRingDropsAndCounts) {
  flight::Recorder::Options opts;
  opts.ring_capacity = 4;
  flight::Recorder rec(opts);  // never started: nothing drains the ring
  for (int i = 0; i < 10; ++i) {
    rec.emit(make_record(flight::Kind::None));
  }
  EXPECT_GT(rec.dropped(), 0u);
  EXPECT_LE(rec.snapshot().size(), 4u);
}

TEST(FlightRecorder, PostMortemDisabledWithoutDirEnabledWithIt) {
  flight::Recorder off;
  EXPECT_EQ(off.write_post_mortem(1, "failed: x", {}), "");

  const std::string dir = fresh_dir("pm_unit");
  flight::Recorder::Options opts;
  opts.post_mortem_dir = dir;
  flight::Recorder rec(opts);
  rec.emit(make_record(flight::Kind::SessionState, 10, 3, 0, 0,
                       rec.intern("Failed")));
  const std::string path = rec.write_post_mortem(
      3, "failed: synthetic", {{"queue", 12}, {"compute", 34}});
  ASSERT_FALSE(path.empty());
  EXPECT_TRUE(std::filesystem::exists(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("failed: synthetic"), std::string::npos);
  EXPECT_NE(json.find("queue"), std::string::npos);
}

// --- Serving layer end to end -----------------------------------------------

serve::SessionConfig tiny_session(const char* name, double tolerance) {
  serve::SessionConfig sc;
  sc.name = name;
  sc.run = pipeline::RunConfig::x86_disk(wl::FileKind::Bmp,
                                         sre::DispatchPolicy::Balanced);
  sc.run.bytes = 128 * 1024;
  sc.run.spec.tolerance = tolerance;
  return sc;
}

TEST(FlightServe, DoneSessionGetsAttributionBreakdown) {
  flight::Recorder rec;
  rec.start();
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 2;
  cfg.flight = &rec;
  serve::SessionManager mgr(cfg);

  const auto out = mgr.submit(tiny_session("attr", /*tolerance=*/1e9));
  ASSERT_TRUE(out.accepted);
  ASSERT_NE(mgr.wait(out.id), nullptr);
  const auto st = mgr.stats(out.id);
  EXPECT_EQ(st.state, serve::SessionState::Done);
  EXPECT_GT(st.attribution.compute_us, 0u);
  mgr.drain();

  // The recorder saw the full lifecycle: session edges, tasks, attribution.
  const auto window = rec.snapshot();
  bool saw_state = false, saw_attr = false, saw_task = false;
  for (const auto& r : window) {
    saw_state |= r.kind == flight::Kind::SessionState && r.stream == out.id;
    saw_attr |= r.kind == flight::Kind::Attribution && r.stream == out.id;
    saw_task |= r.kind == flight::Kind::TaskCreated && r.stream == out.id;
  }
  EXPECT_TRUE(saw_state);
  EXPECT_TRUE(saw_attr);
  EXPECT_TRUE(saw_task);
}

TEST(FlightServe, ForcedFailureWritesPostMortemWithRollbackCause) {
  const std::string dir = fresh_dir("pm_serve");
  flight::Recorder::Options fopts;
  fopts.post_mortem_dir = dir;
  flight::Recorder rec(fopts);
  rec.start();

  // Chaos as the shared fault plan: latency spikes keep the schedule
  // hostile while the zero-tolerance session forces real rollbacks.
  stress::ChaosOptions copts;
  copts.delay_prob = 0.2;
  copts.max_delay_us = 200;
  stress::ChaosSchedule chaos(0xf11ULL, copts);

  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 2;
  cfg.flight = &rec;
  cfg.fault_plan = &chaos;
  serve::SessionManager mgr(cfg);

  // 1. A zero-tolerance session: every verification fails, so a rollback —
  //    and its PredictorCharged record (rollbacks are only charged to a
  //    predictor under Bank mode) — lands in the window.
  serve::SessionConfig rolling = tiny_session("rollback", /*tolerance=*/0.0);
  rolling.run.spec.predictor = tvs::PredictorMode::Bank;
  const auto roll = mgr.submit(std::move(rolling));
  ASSERT_TRUE(roll.accepted);
  const pipeline::RunResult* rr = mgr.wait(roll.id);
  ASSERT_NE(rr, nullptr);
  EXPECT_GE(rr->rollbacks, 1u);

  // 2. A session whose input cannot be read: admission throws → Failed →
  //    automatic post-mortem.
  serve::SessionConfig bad = tiny_session("doomed", 1e9);
  bad.run.input_path = "/nonexistent/tvs_flight_test_input";
  const auto fail = mgr.submit(std::move(bad));
  ASSERT_TRUE(fail.accepted);
  EXPECT_EQ(mgr.wait(fail.id), nullptr);
  EXPECT_EQ(mgr.stats(fail.id).state, serve::SessionState::Failed);
  mgr.drain();

  const std::string path =
      dir + "/session-" + std::to_string(fail.id) + "-postmortem.trace.json";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const std::string json = slurp(path);
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("failed:"), std::string::npos);
  EXPECT_NE(json.find("attribution"), std::string::npos);
  // The neighbor's rollback happened strictly before the doomed session was
  // submitted, so the causal slice's global speculation context carries it.
  EXPECT_NE(json.find("rollback-cause"), std::string::npos);
}

TEST(FlightServe, ShedWhileQueuedWritesSpanlessPostMortem) {
  const std::string dir = fresh_dir("pm_shed");
  flight::Recorder::Options fopts;
  fopts.post_mortem_dir = dir;
  flight::Recorder rec(fopts);
  rec.start();

  serve::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_concurrent = 1;
  cfg.shed.queue_capacity = {0, 0, 0};  // shed everything at submit
  cfg.flight = &rec;
  serve::SessionManager mgr(cfg);

  const auto out = mgr.submit(tiny_session("shed-me", 1e9));
  EXPECT_FALSE(out.accepted);
  mgr.drain();  // post-mortems are guaranteed flushed by the time this returns

  const std::string path =
      dir + "/session-" + std::to_string(out.id) + "-postmortem.trace.json";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const std::string json = slurp(path);
  EXPECT_TRUE(json_lite::valid(json)) << "bad byte at "
                                      << json_lite::error_at(json);
  EXPECT_NE(json.find("shed:"), std::string::npos);
}

}  // namespace
