// Simulated-annealing TSP substrate and the speculative matching pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "anneal/anneal_pipeline.h"
#include "anneal/tsp.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"

namespace {

using ann::Annealer;
using ann::Cities;
using ann::Tour;

TEST(Tsp, MakeCitiesDeterministic) {
  const Cities a = ann::make_cities(50, 1);
  const Cities b = ann::make_cities(50, 1);
  const Cities c = ann::make_cities(50, 2);
  EXPECT_EQ(a.xy, b.xy);
  EXPECT_NE(a.xy, c.xy);
  EXPECT_EQ(a.size(), 50u);
  EXPECT_THROW(ann::make_cities(2, 1), std::invalid_argument);
}

TEST(Tsp, TourCostOfSquare) {
  Cities c;
  c.xy = {0, 0, 1, 0, 1, 1, 0, 1};  // unit square
  const Tour t = ann::initial_tour(4);
  EXPECT_DOUBLE_EQ(ann::tour_cost(c, t), 4.0);
}

TEST(Tsp, AnnealingImprovesTheTour) {
  const Cities cities = ann::make_cities(80, 5);
  Annealer solver(cities, 9);
  const double initial = solver.current_cost();
  for (int i = 0; i < 30; ++i) solver.sweep();
  EXPECT_LT(solver.current_cost(), initial * 0.6)
      << "30 sweeps must cut the random tour substantially";
  // The cached incremental cost must match a fresh evaluation.
  EXPECT_NEAR(solver.current_cost(),
              ann::tour_cost(cities, solver.current()), 1e-6);
  // The tour stays a permutation.
  auto order = solver.current().order;
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Tsp, SweepsAreNonMonotoneEarly) {
  // The property this scenario exists for: annealing cost jitters.
  const Cities cities = ann::make_cities(80, 5);
  Annealer solver(cities, 9);
  bool any_increase = false;
  double prev = solver.current_cost();
  for (int i = 0; i < 10; ++i) {
    const double cur = solver.sweep();
    if (cur > prev + 1e-9) any_increase = true;
    prev = cur;
  }
  EXPECT_TRUE(any_increase) << "early sweeps should sometimes regress";
}

TEST(Tsp, DeterministicPerSeed) {
  const Cities cities = ann::make_cities(40, 3);
  Annealer a(cities, 7);
  Annealer b(cities, 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.sweep(), b.sweep());
  }
  EXPECT_EQ(a.current(), b.current());
}

TEST(Tsp, MatchPointsFindsNearestEdge) {
  Cities c;
  c.xy = {0, 0, 10, 0, 10, 10, 0, 10};  // square, side 10
  const Tour t = ann::initial_tour(4);
  // A point just above the bottom edge (edge 0: city0→city1).
  const std::vector<double> q = {5.0, 0.5, /* near right edge: */ 9.9, 5.0};
  const auto m = ann::match_points(c, t, q, 0, 2);
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[1], 1u);
}

// --- Pipeline ---------------------------------------------------------

struct Scenario {
  Cities cities = ann::make_cities(60, 17);
  std::vector<double> queries = ann::make_queries(cities, 8192, 4);
  ann::AnnealPipelineConfig cfg;

  Scenario() {
    cfg.sweeps = 24;
    cfg.block_points = 512;
    cfg.spec.step_size = 1;
    cfg.spec.verify = tvs::VerificationPolicy::every_kth(3);
    cfg.spec.tolerance = 0.05;
  }
};

TEST(AnnealPipeline, NaturalMatchesSerialReference) {
  Scenario s;
  sre::Runtime rt(sre::DispatchPolicy::NonSpeculative);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
  ann::AnnealPipeline pl(rt, s.cities, s.queries, s.cfg, false);
  pl.start();
  ex.run();
  pl.validate_complete();

  Annealer ref(s.cities, s.cfg.solver_seed);
  for (std::size_t i = 0; i < s.cfg.sweeps; ++i) ref.sweep();
  EXPECT_EQ(pl.committed_tour(), ref.current());
  EXPECT_EQ(pl.matches(), ann::match_points(s.cities, ref.current(),
                                            s.queries, 0, 8192));
}

TEST(AnnealPipeline, TightToleranceCausesRepeatedRollbacks) {
  // Annealing keeps improving well past the first sweeps; a tight relative
  // cost tolerance must trigger more than one rollback cycle — the
  // behaviour that distinguishes this scenario from CG/Lloyd.
  Scenario s;
  s.cfg.spec.tolerance = 0.01;
  s.cfg.spec.verify = tvs::VerificationPolicy::full();
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
  ann::AnnealPipeline pl(rt, s.cities, s.queries, s.cfg, true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_GE(pl.rollbacks(), 2u);
  EXPECT_EQ(pl.matches(), ann::match_points(s.cities, pl.committed_tour(),
                                            s.queries, 0, 8192));
}

TEST(AnnealPipeline, LooseToleranceCommitsAndSavesTime) {
  Scenario s;
  s.cfg.spec.tolerance = 0.60;  // generous: an early tour is fine to match on
  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    ann::AnnealPipeline pl(rt, s.cities, s.queries, s.cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return std::make_pair(ex.makespan_us(), pl.speculation_committed());
  };
  const auto [nat_time, nat_commit] = run(false);
  const auto [spec_time, spec_commit] = run(true);
  EXPECT_FALSE(nat_commit);
  EXPECT_TRUE(spec_commit);
  EXPECT_LT(spec_time, nat_time);
}

TEST(AnnealPipeline, CommittedMatchingStaysWithinSemanticTolerance) {
  // The whole point of the semantic check: if a speculative tour commits
  // under an X% sample-re-match tolerance, the *full* dataset's matching
  // disagreement vs the final tour stays near X% (sampling error aside).
  Scenario s;
  s.cfg.spec.tolerance = 0.30;
  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    ann::AnnealPipeline pl(rt, s.cities, s.queries, s.cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return std::pair{pl.matches(), pl.committed_tour()};
  };
  const auto [nmatch, ntour] = run(false);
  const auto [smatch, stour] = run(true);

  const auto edge_cities = [](const ann::Tour& t, std::uint32_t e) {
    const std::size_t n = t.order.size();
    std::uint32_t u = t.order[e];
    std::uint32_t v = t.order[(e + 1) % n];
    if (u > v) std::swap(u, v);
    return std::pair{u, v};
  };
  std::size_t differ = 0;
  for (std::size_t i = 0; i < nmatch.size(); ++i) {
    if (edge_cities(ntour, nmatch[i]) != edge_cities(stour, smatch[i])) {
      ++differ;
    }
  }
  const double frac =
      static_cast<double>(differ) / static_cast<double>(nmatch.size());
  EXPECT_LE(frac, s.cfg.spec.tolerance + 0.10)
      << "full-dataset disagreement must track the sampled tolerance";
}

TEST(AnnealPipeline, ValidatesInputs) {
  Scenario s;
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  std::vector<double> odd = {1.0, 2.0, 3.0};
  EXPECT_THROW(ann::AnnealPipeline(rt, s.cities, odd, s.cfg, true),
               std::invalid_argument);
  auto bad = s.cfg;
  bad.sweeps = 0;
  EXPECT_THROW(ann::AnnealPipeline(rt, s.cities, s.queries, bad, true),
               std::invalid_argument);
}

}  // namespace
