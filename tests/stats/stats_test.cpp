#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "stats/ascii_plot.h"
#include "stats/csv.h"
#include "stats/summary.h"
#include "stats/trace.h"

namespace {

using stats::BlockTrace;
using stats::Micros;

TEST(Summary, KnownValues) {
  const std::vector<Micros> v = {10, 20, 30, 40, 50};
  const auto s = stats::summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 30.0);
  EXPECT_EQ(s.min, 10u);
  EXPECT_EQ(s.max, 50u);
  EXPECT_EQ(s.p50, 30u);
  EXPECT_NEAR(s.stddev, 14.142, 0.01);
}

TEST(Summary, EmptySeries) {
  const auto s = stats::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  EXPECT_EQ(stats::percentile({0, 100}, 50.0), 50u);
  EXPECT_EQ(stats::percentile({0, 100}, 0.0), 0u);
  EXPECT_EQ(stats::percentile({0, 100}, 100.0), 100u);
  EXPECT_EQ(stats::percentile({10, 20, 30, 40}, 25.0), 18u);  // 10+0.75*10
}

TEST(Percentile, Validates) {
  EXPECT_THROW(stats::percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1}, -1.0), std::invalid_argument);
  EXPECT_THROW(stats::percentile({1}, 101.0), std::invalid_argument);
}

TEST(PercentChange, Signs) {
  EXPECT_DOUBLE_EQ(stats::percent_change(100.0, 50.0), -50.0);
  EXPECT_DOUBLE_EQ(stats::percent_change(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(stats::percent_change(0.0, 5.0), 0.0);
}

TEST(Downsample, KeepsFinalPoint) {
  std::vector<Micros> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  const auto d = stats::downsample(v, 10);
  EXPECT_LE(d.size(), 12u);
  EXPECT_EQ(d.front().first, 0u);
  EXPECT_EQ(d.back().first, 999u);
}

TEST(BlockTrace, LatencyAndCompleteness) {
  BlockTrace t(3);
  t.record_arrival(0, 100);
  t.record_arrival(1, 200);
  t.record_arrival(2, 300);
  EXPECT_FALSE(t.complete());
  t.record_done(0, 150, false);
  t.record_done(1, 260, true);
  t.record_done(2, 330, true);
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.latencies(), (std::vector<Micros>{50, 60, 30}));
  EXPECT_EQ(t.arrivals(), (std::vector<Micros>{100, 200, 300}));
  EXPECT_EQ(t.last_done_us(), 330u);
  EXPECT_EQ(t.speculative_commits(), 2u);
  EXPECT_EQ(t.wasted_encodes(), 0u);
}

TEST(BlockTrace, RollbackOverwritesAndCountsWaste) {
  BlockTrace t(1);
  t.record_arrival(0, 0);
  t.record_done(0, 10, true);   // speculative encode
  t.record_done(0, 50, false);  // re-encode after rollback
  EXPECT_EQ(t.latencies()[0], 50u);
  EXPECT_FALSE(t.at(0).speculative);
  EXPECT_EQ(t.wasted_encodes(), 1u);
}

TEST(BlockTrace, LatenciesThrowOnIncompleteRun) {
  BlockTrace t(2);
  t.record_done(0, 5, false);
  EXPECT_THROW(t.latencies(), std::logic_error);
}

TEST(RunCounters, ToStringMentionsEverything) {
  stats::RunCounters c;
  c.tasks_executed = 5;
  c.rollbacks = 2;
  const auto s = stats::to_string(c);
  EXPECT_NE(s.find("tasks=5"), std::string::npos);
  EXPECT_NE(s.find("rollbacks=2"), std::string::npos);
}

TEST(Csv, EscapesSpecialCells) {
  EXPECT_EQ(stats::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(stats::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(stats::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(stats::CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  const auto dir = std::filesystem::temp_directory_path() / "tvs_csv_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "t.csv").string();
  {
    stats::CsvWriter w(path);
    w.header({"a", "b"});
    w.row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::filesystem::remove_all(dir);
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(stats::CsvWriter("/nonexistent/dir/f.csv"), std::runtime_error);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  const std::vector<Micros> a = {1, 2, 3, 4, 5};
  const std::vector<Micros> b = {5, 4, 3, 2, 1};
  const auto out =
      stats::plot_series({{"up", &a}, {"down", &b}}, 40, 8);
  EXPECT_NE(out.find("up"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
  EXPECT_NE(out.find("y-max"), std::string::npos);
}

TEST(AsciiPlot, SparklineLengthMatchesWidth) {
  const std::vector<Micros> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(stats::sparkline(v, 20).size(), 20u);
  EXPECT_TRUE(stats::sparkline({}, 20).empty());
}

TEST(AsciiPlot, BarChartShowsValues) {
  const auto out = stats::bar_chart({{"fast", 10.0}, {"slow", 20.0}}, "us");
  EXPECT_NE(out.find("fast"), std::string::npos);
  EXPECT_NE(out.find("20 us"), std::string::npos);
}

}  // namespace
