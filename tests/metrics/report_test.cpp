// End-to-end observability: a real pipeline run with the metrics stack
// attached must produce counters consistent with the runtime's own
// bookkeeping, live sampler rows, and a well-formed report bundle.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "metrics/exporters.h"
#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/sampler.h"
#include "pipeline/driver.h"
#include "support/json_lite.h"
#include "trace/exporters.h"
#include "trace/recorder.h"

namespace {

namespace fs = std::filesystem;

pipeline::RunConfig small_config() {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 256 * 1024;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(MetricsRun, ObserverCountersMatchRuntimeCounters) {
  metrics::Registry reg;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  const auto res = pipeline::run_sim(small_config(), opt);
  const auto snap = reg.snapshot();

  EXPECT_EQ(static_cast<std::uint64_t>(snap.scalar("tvs_tasks_finished_total")),
            res.counters.tasks_executed);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.scalar("tvs_tasks_aborted_total")),
            res.counters.tasks_aborted);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.scalar("tvs_epochs_opened_total")),
            res.counters.epochs_opened);
  EXPECT_EQ(
      static_cast<std::uint64_t>(snap.scalar("tvs_epochs_committed_total")),
      res.counters.epochs_committed);
  EXPECT_EQ(static_cast<std::uint64_t>(
                snap.scalar("tvs_tasks_finished_total", "class=\"control\"")),
            res.counters.checks_executed);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.scalar("tvs_open_epochs")), 0u)
      << "every opened epoch must be committed or aborted by run end";
  // Check verdicts were recorded with margins (tolerance_margin callback).
  const double verdicts = snap.scalar("tvs_check_verdicts_total");
  EXPECT_GT(verdicts, 0.0);
  for (const auto& h : snap.histograms) {
    if (h.name == "tvs_check_margin_ppm") {
      EXPECT_EQ(h.totals.count, static_cast<std::uint64_t>(verdicts));
    }
  }
}

TEST(MetricsRun, DeterministicSimIsUnperturbedByMetricsAndSampler) {
  const auto base = pipeline::run_sim(small_config());
  metrics::Registry reg;
  metrics::Sampler sampler;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  opt.sampler = &sampler;
  opt.sample_interval_us = 1'000;
  const auto instrumented = pipeline::run_sim(small_config(), opt);
  EXPECT_EQ(base.makespan_us, instrumented.makespan_us)
      << "sampling must not perturb the virtual-time schedule";
  EXPECT_EQ(base.counters.tasks_executed, instrumented.counters.tasks_executed);
  EXPECT_EQ(base.output_bits, instrumented.output_bits);
}

TEST(MetricsRun, SimSamplerTicksOnVirtualTime) {
  metrics::Registry reg;
  metrics::Sampler sampler;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  opt.sampler = &sampler;
  opt.sample_interval_us = 1'000;
  const auto res = pipeline::run_sim(small_config(), opt);
  const auto rows = sampler.samples();
  ASSERT_GE(rows.size(), 2u);
  // Rows are timestamped in virtual time, within the run's makespan (the
  // final closing row lands exactly at the end).
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].t_us, rows[i - 1].t_us);
  }
  EXPECT_LE(rows.back().t_us, res.makespan_us + 1'000);
  const auto names = sampler.series_names();
  EXPECT_EQ(names.size(), rows[0].values.size());
  bool saw_live_work = false;
  for (const auto& row : rows) {
    for (double v : row.values) {
      if (v > 0) saw_live_work = true;
    }
  }
  EXPECT_TRUE(saw_live_work) << "mid-run probes should see non-zero depths";
}

TEST(MetricsRun, ThreadedEngineFillsRegistryAndSampler) {
  metrics::Registry reg;
  metrics::Sampler sampler;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  opt.sampler = &sampler;
  opt.sample_interval_us = 500;
  opt.workers = 4;
  opt.arrival_time_scale = 0.0;
  const auto res = pipeline::run_threaded(small_config(), opt);
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples().size(), 1u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(static_cast<std::uint64_t>(snap.scalar("tvs_tasks_finished_total")),
            res.counters.tasks_executed);
}

TEST(RunReport, BundleIsWellFormedAndComplete) {
  metrics::Registry reg;
  metrics::Sampler sampler;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  opt.sampler = &sampler;
  opt.sample_interval_us = 1'000;
  const auto cfg = small_config();
  const auto res = pipeline::run_sim(cfg, opt);

  const report::RunInfo info = pipeline::run_info(cfg, res, "sim");
  EXPECT_EQ(info.scenario, cfg.label());
  EXPECT_EQ(info.makespan_us, res.makespan_us);
  EXPECT_EQ(info.blocks, res.trace.size());

  const report::RunReport rep = report::make_report(info, &reg, &sampler);
  const auto json = rep.to_json();
  EXPECT_TRUE(json_lite::valid(json))
      << "report JSON invalid; first bad byte at " << json_lite::error_at(json);
  const auto md = rep.to_markdown();
  EXPECT_NE(md.find(cfg.label()), std::string::npos);

  const auto dir =
      (fs::temp_directory_path() / "tvs_report_test").string();
  fs::remove_all(dir);
  const auto paths = report::write_bundle(rep, dir);
  ASSERT_GE(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_TRUE(fs::exists(p)) << p;
    EXPECT_GT(fs::file_size(p), 0u) << p;
  }
  const auto written_json = slurp(dir + "/report.json");
  EXPECT_TRUE(json_lite::valid(written_json));
  EXPECT_NE(slurp(dir + "/report.md").find(cfg.label()), std::string::npos);
  EXPECT_NE(slurp(dir + "/report.prom").find("tvs_tasks_finished_total"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(RunReport, OmitsDispatchSectionWhenNotInstrumented) {
  // run_sim leaves RunResult::dispatch all-zero ("not instrumented"); the
  // report must omit the section rather than print misleading zeros.
  const auto cfg = small_config();
  const auto res = pipeline::run_sim(cfg);
  const report::RunInfo info = pipeline::run_info(cfg, res, "sim");
  ASSERT_TRUE(info.dispatch.empty());

  const report::RunReport rep = report::make_report(info, nullptr, nullptr);
  const auto json = rep.to_json();
  EXPECT_TRUE(json_lite::valid(json));
  EXPECT_EQ(json.find("\"dispatch\""), std::string::npos);
  EXPECT_EQ(rep.to_markdown().find("## Dispatch"), std::string::npos);
}

TEST(RunReport, EmitsDispatchSectionForShardedThreadedRuns) {
  auto cfg = small_config();
  pipeline::RunOptions opt;
  opt.workers = 4;
  opt.dispatch = sre::DispatchMode::Sharded;
  const auto res = pipeline::run_threaded(cfg, opt);
  const report::RunInfo info = pipeline::run_info(cfg, res, "threaded");
  ASSERT_FALSE(info.dispatch.empty());
  EXPECT_EQ(info.dispatch.tasks_run, res.dispatch.tasks_run);

  const report::RunReport rep = report::make_report(info, nullptr, nullptr);
  const auto json = rep.to_json();
  EXPECT_TRUE(json_lite::valid(json));
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks_run\""), std::string::npos);
  EXPECT_NE(rep.to_markdown().find("## Dispatch"), std::string::npos);
}

TEST(RunReport, CarriesTraceArtifactsWhenProvided) {
  tracelog::Recorder rec;
  metrics::Registry reg;
  pipeline::RunOptions opt;
  opt.registry = &reg;
  opt.observer = &rec;  // fanned in beside the metrics bridge
  const auto cfg = small_config();
  const auto res = pipeline::run_sim(cfg, opt);
  EXPECT_EQ(rec.executed_count(), res.counters.tasks_executed)
      << "FanoutObserver must forward every event to the recorder";

  report::RunReport rep =
      report::make_report(pipeline::run_info(cfg, res, "sim"), &reg, nullptr);
  rep.trace_chrome_json = tracelog::to_chrome_trace(rec);
  const auto dir =
      (fs::temp_directory_path() / "tvs_report_trace_test").string();
  fs::remove_all(dir);
  const auto paths = report::write_bundle(rep, dir);
  bool chrome = false;
  for (const auto& p : paths) {
    if (p.find(".chrome.json") != std::string::npos) {
      chrome = true;
      EXPECT_TRUE(json_lite::valid(slurp(p)));
    }
  }
  EXPECT_TRUE(chrome);
  fs::remove_all(dir);
}

}  // namespace
