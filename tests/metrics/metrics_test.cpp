// Metrics registry, sampler and exporters: sharded counters/histograms must
// be exact under concurrent writers, the sampler must start/stop cleanly and
// bound its memory, and the exporters must emit well-formed documents.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "metrics/exporters.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "support/json_lite.h"

namespace {

TEST(Counter, ConcurrentWritersLoseNothing) {
  metrics::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      metrics::bind_shard(static_cast<std::size_t>(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, UnboundThreadsStillCountExactly) {
  metrics::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    // No bind_shard: threads land on round-robin shards.
    threads.emplace_back([&c] {
      for (int i = 0; i < 50'000; ++i) c.add(2);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 6u * 50'000u * 2u);
}

TEST(Gauge, SetAndAdd) {
  metrics::Gauge g;
  g.set(4.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(-6.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketPlacementIsByBitWidth) {
  metrics::Histogram h;
  h.observe(0);    // bit_width 0 → bucket 0 (upper bound 0)
  h.observe(1);    // bucket 1 (≤ 1)
  h.observe(2);    // bucket 2 (≤ 3)
  h.observe(3);    // bucket 2
  h.observe(100);  // bit_width 7 → bucket 7 (≤ 127)
  const auto t = h.totals();
  EXPECT_EQ(t.count, 5u);
  EXPECT_EQ(t.sum, 106u);
  EXPECT_EQ(t.buckets[0], 1u);
  EXPECT_EQ(t.buckets[1], 1u);
  EXPECT_EQ(t.buckets[2], 2u);
  EXPECT_EQ(t.buckets[7], 1u);
  EXPECT_EQ(metrics::Histogram::Totals::upper_bound(2), 3u);
  EXPECT_EQ(metrics::Histogram::Totals::upper_bound(7), 127u);
  EXPECT_DOUBLE_EQ(t.mean(), 106.0 / 5.0);
}

TEST(Histogram, ConcurrentObserversSumExactly) {
  metrics::Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      metrics::bind_shard(static_cast<std::size_t>(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(i & 1023);
    });
  }
  for (auto& t : threads) t.join();
  const auto totals = h.totals();
  EXPECT_EQ(totals.count, kThreads * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (auto b : totals.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, totals.count);
}

TEST(Registry, HandlesAreStableAndKeyedByNameAndLabels) {
  metrics::Registry reg;
  auto& a = reg.counter("hits", "class=\"natural\"");
  auto& b = reg.counter("hits", "class=\"speculative\"");
  auto& a2 = reg.counter("hits", "class=\"natural\"");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.add(3);
  b.add(5);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.scalar("hits"), 8.0);
  EXPECT_DOUBLE_EQ(snap.scalar("hits", "class=\"natural\""), 3.0);
  EXPECT_DOUBLE_EQ(snap.scalar("missing"), 0.0);
}

TEST(Sampler, ManualTicksRecordSeriesInOrder) {
  metrics::Sampler s;
  double v = 1.0;
  s.add_series("a", [&v] { return v; });
  s.add_series("b", [&v] { return v * 10; });
  s.tick(100);
  v = 2.0;
  s.tick(200);
  const auto names = s.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  const auto rows = s.samples();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].t_us, 100u);
  EXPECT_DOUBLE_EQ(rows[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(rows[0].values[1], 10.0);
  EXPECT_DOUBLE_EQ(rows[1].values[0], 2.0);
  EXPECT_EQ(s.ticks(), 2u);
  EXPECT_EQ(s.dropped(), 0u);
}

TEST(Sampler, CapacityBoundsMemoryAndCountsDrops) {
  metrics::Sampler s(4);
  s.add_series("x", [] { return 0.0; });
  for (std::uint64_t t = 0; t < 10; ++t) s.tick(t);
  const auto rows = s.samples();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().t_us, 6u);  // oldest surviving row
  EXPECT_EQ(rows.back().t_us, 9u);
  EXPECT_EQ(s.dropped(), 6u);
}

TEST(Sampler, BackgroundThreadStartStopIsIdempotent) {
  metrics::Sampler s;
  std::atomic<int> calls{0};
  s.add_series("n", [&calls] { return static_cast<double>(++calls); });
  EXPECT_FALSE(s.running());
  s.start(200);  // 200 µs period
  EXPECT_TRUE(s.running());
  s.start(200);  // second start is a no-op
  while (s.ticks() < 3) std::this_thread::yield();
  s.stop();
  EXPECT_FALSE(s.running());
  s.stop();  // second stop is a no-op
  const auto after = s.ticks();
  EXPECT_GE(after, 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(s.ticks(), after) << "no ticks after stop()";
}

TEST(Sampler, ClearSeriesKeepsNamesAndSamples) {
  metrics::Sampler s;
  s.add_series("depth", [] { return 7.0; });
  s.tick(1);
  s.clear_series();
  ASSERT_EQ(s.series_names().size(), 1u);
  EXPECT_EQ(s.series_names()[0], "depth");
  ASSERT_EQ(s.samples().size(), 1u);
  s.tick(2);  // after clearing, rows record zeros instead of dangling reads
  EXPECT_DOUBLE_EQ(s.samples()[1].values[0], 0.0);
}

TEST(Exporters, PrometheusFormatCarriesTypesLabelsAndHistograms) {
  metrics::Registry reg;
  reg.counter("tvs_tasks_total", "class=\"natural\"").add(5);
  reg.gauge("tvs_open_epochs").set(2);
  auto& h = reg.histogram("tvs_run_us");
  h.observe(3);
  h.observe(100);
  const auto text = metrics::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE tvs_tasks_total counter"), std::string::npos);
  EXPECT_NE(text.find("tvs_tasks_total{class=\"natural\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tvs_open_epochs gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tvs_run_us histogram"), std::string::npos);
  EXPECT_NE(text.find("tvs_run_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("tvs_run_us_sum 103"), std::string::npos);
  EXPECT_NE(text.find("tvs_run_us_count 2"), std::string::npos);
  // Cumulative buckets: the le="3" bucket holds the 3, le="127" holds both.
  EXPECT_NE(text.find("tvs_run_us_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_NE(text.find("tvs_run_us_bucket{le=\"127\"} 2"), std::string::npos);
}

TEST(Exporters, JsonSnapshotParsesAndCarriesSamples) {
  metrics::Registry reg;
  reg.counter("c", "kind=\"x\"").add(1);
  reg.histogram("h").observe(42);
  metrics::Sampler s;
  s.add_series("depth", [] { return 3.5; });
  s.tick(10);
  const auto plain = metrics::to_json(reg.snapshot());
  EXPECT_TRUE(json_lite::valid(plain))
      << "first bad byte at " << json_lite::error_at(plain);
  const auto with_samples = metrics::to_json(reg.snapshot(), s);
  EXPECT_TRUE(json_lite::valid(with_samples))
      << "first bad byte at " << json_lite::error_at(with_samples);
  EXPECT_NE(with_samples.find("\"names\":[\"depth\"]"), std::string::npos);
  EXPECT_NE(with_samples.find("\"dropped\":0"), std::string::npos);
}

TEST(Exporters, DashboardLineSummarizesHealth) {
  metrics::Registry reg;
  reg.counter("tvs_tasks_finished_total", "class=\"natural\"").add(10);
  reg.counter("tvs_tasks_finished_total", "class=\"speculative\"").add(30);
  reg.counter("tvs_epochs_opened_total").add(2);
  reg.counter("tvs_epochs_committed_total").add(1);
  const auto line = metrics::dashboard_line(reg.snapshot(), 1'500'000);
  EXPECT_NE(line.find("t=1.5s"), std::string::npos);
  EXPECT_NE(line.find("tasks=40"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "single line, no newline";
}

}  // namespace
