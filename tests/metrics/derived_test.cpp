// DeltaView: interval rates and quantiles over Registry snapshots — the
// control plane's sensor layer.
#include "metrics/derived.h"

#include <gtest/gtest.h>

#include "metrics/registry.h"

namespace {

TEST(DeltaView, UnprimedViewReadsZero) {
  metrics::Registry reg;
  reg.counter("c").add(100);
  metrics::DeltaView view(reg);
  EXPECT_DOUBLE_EQ(view.counter_delta("c"), 0.0);
  EXPECT_DOUBLE_EQ(view.counter_rate("c"), 0.0);
  EXPECT_EQ(view.interval_us(), 0u);
  view.advance(1'000);  // one snapshot is still not an interval
  EXPECT_DOUBLE_EQ(view.counter_delta("c"), 0.0);
  EXPECT_EQ(view.interval_us(), 0u);
}

TEST(DeltaView, CounterDeltaCoversOnlyTheInterval) {
  metrics::Registry reg;
  auto& c = reg.counter("rollbacks_total");
  c.add(7);  // pre-interval history must not leak in
  metrics::DeltaView view(reg);
  view.advance(0);
  c.add(5);
  view.advance(1'000'000);
  EXPECT_DOUBLE_EQ(view.counter_delta("rollbacks_total"), 5.0);
  EXPECT_DOUBLE_EQ(view.counter_rate("rollbacks_total"), 5.0);
  EXPECT_EQ(view.interval_us(), 1'000'000u);
  // The next interval starts from the newer snapshot.
  view.advance(1'500'000);
  EXPECT_DOUBLE_EQ(view.counter_delta("rollbacks_total"), 0.0);
}

TEST(DeltaView, LabelSubstringSelectsSeries) {
  metrics::Registry reg;
  metrics::DeltaView view(reg);
  view.advance(0);
  reg.counter("shed_total", "reason=\"deadline\"").add(3);
  reg.counter("shed_total", "reason=\"queue_full\"").add(10);
  view.advance(1'000'000);
  EXPECT_DOUBLE_EQ(view.counter_delta("shed_total", "reason=\"deadline\""), 3.0);
  EXPECT_DOUBLE_EQ(view.counter_delta("shed_total"), 13.0) << "empty = all";
  EXPECT_DOUBLE_EQ(view.counter_delta("shed_total", "reason=\"nope\""), 0.0);
}

TEST(DeltaView, CountersBornMidIntervalCountFromZero) {
  metrics::Registry reg;
  metrics::DeltaView view(reg);
  view.advance(0);
  reg.counter("fresh").add(4);  // did not exist in the previous snapshot
  view.advance(1'000);
  EXPECT_DOUBLE_EQ(view.counter_delta("fresh"), 4.0);
}

TEST(DeltaView, HistogramQuantileIsIntervalLocal) {
  metrics::Registry reg;
  auto& h = reg.histogram("wait_us", "priority=\"interactive\"");
  for (int i = 0; i < 100; ++i) h.observe(1'000'000);  // old, huge waits
  metrics::DeltaView view(reg);
  view.advance(0);
  for (int i = 0; i < 99; ++i) h.observe(100);
  h.observe(60'000);
  view.advance(50'000);
  // p50 of the interval must reflect the fresh small samples, not the
  // million-microsecond history before the view was primed.
  const double p50 =
      view.histogram_quantile("wait_us", "priority=\"interactive\"", 0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 255.0) << "log-bucket upper bound: <= 2x the true p50";
  const double p95 =
      view.histogram_quantile("wait_us", "priority=\"interactive\"", 0.95);
  EXPECT_LE(p95, 255.0) << "99 of 100 samples are ~100us";
  const double p995 =
      view.histogram_quantile("wait_us", "priority=\"interactive\"", 0.995);
  EXPECT_GE(p995, 60'000.0) << "the tail sample surfaces at high q";
}

TEST(DeltaView, HistogramQuantileZeroWhenQuietOrAbsent) {
  metrics::Registry reg;
  reg.histogram("h").observe(50);
  metrics::DeltaView view(reg);
  view.advance(0);
  view.advance(1'000);  // no new samples in the interval
  EXPECT_DOUBLE_EQ(view.histogram_quantile("h", "", 0.95), 0.0);
  EXPECT_DOUBLE_EQ(view.histogram_quantile("missing", "", 0.95), 0.0);
}

TEST(DeltaView, RateIsZeroOnEmptyInterval) {
  metrics::Registry reg;
  metrics::DeltaView view(reg);
  view.advance(1'000);
  reg.counter("c").add(5);
  view.advance(1'000);  // zero-length interval: delta yes, rate no
  EXPECT_DOUBLE_EQ(view.counter_delta("c"), 5.0);
  EXPECT_DOUBLE_EQ(view.counter_rate("c"), 0.0);
}

}  // namespace
