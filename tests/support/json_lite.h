// json_lite: a strict, dependency-free JSON validator for tests.
//
// Not a DOM — tests only need to assert "this artifact parses as JSON"
// (Chrome traces, metrics snapshots, run reports) and point at the first
// offending byte when it doesn't. Implements the full RFC 8259 grammar:
// strings with escapes and \uXXXX, numbers with exponents, nested
// arrays/objects, and rejects trailing garbage.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace json_lite {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  /// Byte offset where parsing stopped (== size() on success).
  [[nodiscard]] std::size_t error_pos() const { return pos_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const unsigned char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i, ++pos_) {
              if (pos_ >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
                return false;
              }
            }
            break;
          }
          default: return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      pos_ = start;
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// One-shot convenience: is `text` exactly one valid JSON document?
inline bool valid(const std::string& text) { return Parser(text).parse(); }

/// Offset of the first invalid byte (for assertion messages).
inline std::size_t error_at(const std::string& text) {
  Parser p(text);
  p.parse();
  return p.error_pos();
}

}  // namespace json_lite
