// FIR primitives and the iterative Wiener designer (Fig. 1 substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "filter/fir.h"
#include "filter/iterative_design.h"

namespace {

TEST(Fir, IdentityFilterPassesSignalThrough) {
  const std::vector<double> x = {1.0, -2.0, 3.0, 0.5};
  const std::vector<double> c = {1.0};
  EXPECT_EQ(filt::apply_fir(x, c), x);
}

TEST(Fir, DelayFilterShifts) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> c = {0.0, 1.0};  // one-sample delay
  const auto y = filt::apply_fir(x, c);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(Fir, KnownConvolution) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> c = {0.5, 0.5};
  const auto y = filt::apply_fir(x, c);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Fir, EmptyTapsRejected) {
  const std::vector<double> x = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW(filt::apply_fir(x, empty), std::invalid_argument);
}

TEST(Fir, EnergyAndDiffs) {
  const std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(filt::energy(a), 25.0);
  const std::vector<double> b = {3.0, 5.0};
  EXPECT_DOUBLE_EQ(filt::max_abs_diff(a, b), 1.0);
  EXPECT_NEAR(filt::rel_l2_diff(a, b), 1.0 / std::sqrt(34.0), 1e-12);
  const std::vector<double> shorter = {1.0};
  EXPECT_THROW(filt::max_abs_diff(a, shorter), std::invalid_argument);
}

TEST(Fir, SignalIsDeterministic) {
  EXPECT_EQ(filt::make_signal(100, 5), filt::make_signal(100, 5));
  EXPECT_NE(filt::make_signal(100, 5), filt::make_signal(100, 6));
}

TEST(IterativeDesign, ProblemEstimationValidates) {
  const auto x = filt::make_signal(1000, 1);
  EXPECT_THROW(filt::estimate_problem(x, x, 0), std::invalid_argument);
  std::vector<double> short_target(10);
  EXPECT_THROW(filt::estimate_problem(x, short_target, 8),
               std::invalid_argument);
}

TEST(IterativeDesign, IteratesConverge) {
  const auto noisy = filt::make_signal(8000, 2, 0.8);
  const auto clean = filt::make_signal(8000, 2, 0.0);
  const auto prob = filt::estimate_problem(noisy, clean, 12);
  const auto profile = filt::convergence_profile(prob, 20);
  ASSERT_EQ(profile.size(), 20u);
  // Distance to the final iterate shrinks (CG may wobble slightly in the
  // L2 norm, so allow a small factor) and reaches machine-level precision
  // once the Krylov space is exhausted (taps = 12 steps).
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_LE(profile[i], profile[i - 1] * 1.25 + 1e-9) << i;
  }
  EXPECT_LT(profile[15], 1e-8);
  EXPECT_GT(profile[0], profile[15]);
}

TEST(IterativeDesign, ConvergedSolverIsStationary) {
  const auto noisy = filt::make_signal(4000, 3, 0.5);
  const auto clean = filt::make_signal(4000, 3, 0.0);
  const auto prob = filt::estimate_problem(noisy, clean, 8);
  filt::IterativeSolver solver(prob);
  for (int i = 0; i < 50; ++i) solver.step();
  EXPECT_LT(solver.residual_norm(), 1e-8);
  const auto c = solver.current();
  solver.step();
  EXPECT_LT(filt::rel_l2_diff(solver.current(), c), 1e-10);
  EXPECT_EQ(solver.steps_taken(), 51u);
}

TEST(IterativeDesign, SolutionSolvesNormalEquations) {
  const auto noisy = filt::make_signal(4000, 5, 0.5);
  const auto clean = filt::make_signal(4000, 5, 0.0);
  const auto prob = filt::estimate_problem(noisy, clean, 10);
  const auto c = filt::solve(prob, 40);
  const auto rc = prob.apply(c);
  for (std::size_t i = 0; i < prob.taps; ++i) {
    EXPECT_NEAR(rc[i], prob.crosscorr[i], 1e-8) << i;
  }
}

TEST(IterativeDesign, FilteringWithSolvedTapsReducesNoise) {
  // Wiener-ish sanity: filtering the noisy signal with the designed taps
  // should land closer to the clean target than the raw noisy signal is.
  const auto clean = filt::make_signal(16000, 4, 0.0);
  const auto noisy = filt::make_signal(16000, 4, 0.9);
  const auto prob = filt::estimate_problem(noisy, clean, 24);
  const auto taps = filt::solve(prob, 40);
  const auto filtered = filt::apply_fir(noisy, taps);

  double err_raw = 0.0;
  double err_filtered = 0.0;
  for (std::size_t i = 100; i < clean.size(); ++i) {
    err_raw += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
    err_filtered += (filtered[i] - clean[i]) * (filtered[i] - clean[i]);
  }
  EXPECT_LT(err_filtered, err_raw * 0.7);
}

}  // namespace
