// FilterPipeline: the Fig. 1 scenario end-to-end on both executors —
// proving the tvs:: speculation layer is not Huffman-specific.
#include "filter/filter_pipeline.h"

#include <gtest/gtest.h>

#include "filter/fir.h"
#include "filter/iterative_design.h"
#include "sim/sim_executor.h"
#include "sre/threaded_executor.h"

namespace {

using filt::FilterPipeline;
using filt::FilterPipelineConfig;

struct Scenario {
  std::vector<double> input;
  std::vector<double> target;
  FilterPipelineConfig cfg;
};

Scenario make_scenario(double tolerance, std::size_t iterations = 12) {
  Scenario s;
  s.input = filt::make_signal(32768, 11, 0.7);
  s.target = filt::make_signal(32768, 11, 0.0);
  s.cfg.taps = 12;
  s.cfg.iterations = iterations;
  s.cfg.block_samples = 4096;
  s.cfg.spec.tolerance = tolerance;
  s.cfg.spec.step_size = 1;
  s.cfg.spec.verify = tvs::VerificationPolicy::every_kth(3);
  return s;
}

std::vector<double> reference_output(const Scenario& s) {
  const auto prob =
      filt::estimate_problem(s.input, s.target, s.cfg.taps);
  const auto taps = filt::solve(prob, s.cfg.iterations);
  return filt::apply_fir(s.input, taps);
}

/// rel-L2 distance of the first iterate from the converged coefficients:
/// tolerances above this commit the earliest guess, tolerances below force
/// a rollback.
double first_iterate_gap(const Scenario& s) {
  const auto prob = filt::estimate_problem(s.input, s.target, s.cfg.taps);
  return filt::convergence_profile(prob, s.cfg.iterations).front();
}

TEST(FilterPipeline, NonSpeculativeMatchesSerialReference) {
  Scenario s = make_scenario(0.05);
  sre::Runtime rt(sre::DispatchPolicy::NonSpeculative);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(4));
  FilterPipeline pl(rt, s.input, s.target, s.cfg, /*speculation=*/false);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_FALSE(pl.speculation_committed());
  EXPECT_EQ(pl.output(), reference_output(s));
}

TEST(FilterPipeline, LooseToleranceCommitsEarlyIterate) {
  // A tolerance above the first iterate's distance-to-converged accepts the
  // earliest guess: output differs from the fully converged filter but only
  // within the tolerance in coefficients.
  Scenario s = make_scenario(0.5);
  s.cfg.spec.tolerance = first_iterate_gap(s) * 2.0;
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(4));
  FilterPipeline pl(rt, s.input, s.target, s.cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_TRUE(pl.speculation_committed());
  EXPECT_EQ(pl.rollbacks(), 0u);
  const auto ref_taps = filt::solve(
      filt::estimate_problem(s.input, s.target, s.cfg.taps), s.cfg.iterations);
  EXPECT_LE(filt::rel_l2_diff(pl.final_coefficients(), ref_taps),
            s.cfg.spec.tolerance + 1e-9);
}

TEST(FilterPipeline, TightToleranceRollsBackThenRecovers) {
  // Iterate 1 is far from convergence; with a tight margin the early guess
  // must be rolled back, and the run must still finish with valid output.
  Scenario s = make_scenario(0.0005);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(4));
  FilterPipeline pl(rt, s.input, s.target, s.cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_GE(pl.rollbacks(), 1u);
  // Whatever path won, output must be the filter of the committed taps.
  EXPECT_EQ(pl.output(), filt::apply_fir(s.input, pl.final_coefficients()));
}

TEST(FilterPipeline, SpeculationReducesVirtualMakespan) {
  // The serial iteration chain is the Amdahl bottleneck; speculation should
  // overlap filtering with it and cut the virtual makespan.
  Scenario s = make_scenario(0.5, 16);
  s.cfg.spec.tolerance = first_iterate_gap(s) * 2.0;  // commit, no rollbacks

  auto run = [&](bool speculation) {
    sre::Runtime rt(speculation ? sre::DispatchPolicy::Balanced
                                : sre::DispatchPolicy::NonSpeculative);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(8));
    FilterPipeline pl(rt, s.input, s.target, s.cfg, speculation);
    pl.start();
    ex.run();
    pl.validate_complete();
    return ex.makespan_us();
  };

  const auto natural = run(false);
  const auto speculative = run(true);
  EXPECT_LT(speculative, natural);
}

TEST(FilterPipeline, ThreadedExecutorProducesSameOutput) {
  Scenario s = make_scenario(0.5);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sre::ThreadedExecutor ex(rt, {.workers = 4});
  FilterPipeline pl(rt, s.input, s.target, s.cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  pl.validate_complete();
  EXPECT_EQ(pl.output(), filt::apply_fir(s.input, pl.final_coefficients()));
}

TEST(FilterPipeline, TraceCoversEveryBlock) {
  Scenario s = make_scenario(0.5);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(4));
  FilterPipeline pl(rt, s.input, s.target, s.cfg, /*speculation=*/true);
  pl.start();
  ex.run();
  EXPECT_TRUE(pl.trace().complete());
  EXPECT_EQ(pl.trace().size(), (s.input.size() + 4095) / 4096);
}

TEST(FilterPipeline, ValidatesConfig) {
  std::vector<double> x(100, 0.0);
  std::vector<double> short_y(10, 0.0);
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  FilterPipelineConfig cfg;
  EXPECT_THROW(FilterPipeline(rt, x, short_y, cfg, true),
               std::invalid_argument);
  cfg.iterations = 0;
  EXPECT_THROW(FilterPipeline(rt, x, x, cfg, true), std::invalid_argument);
}

}  // namespace
