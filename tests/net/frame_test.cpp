// Frame codec tests: the hostile-input gate of the distributed layer.
// decode_header must reject truncated headers, wrong magic, version skew
// and oversized declared lengths before any payload byte is trusted; the
// socket-level read_frame must distinguish clean EOF from mid-frame
// truncation and survive garbage mid-stream without over-reading.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/socket.h"

namespace {

std::vector<std::uint8_t> valid_header(std::uint16_t type,
                                       std::uint32_t payload_len) {
  std::vector<std::uint8_t> h(net::kHeaderSize);
  net::encode_header(h.data(), type, payload_len);
  return h;
}

TEST(FrameTest, HeaderRoundTrip) {
  const auto h = valid_header(42, 1234);
  const net::FrameHeader dec = net::decode_header(h.data(), h.size());
  EXPECT_EQ(dec.version, net::kProtocolVersion);
  EXPECT_EQ(dec.type, 42);
  EXPECT_EQ(dec.payload_len, 1234u);
}

TEST(FrameTest, TruncatedHeaderThrows) {
  const auto h = valid_header(1, 0);
  for (std::size_t n = 0; n < net::kHeaderSize; ++n) {
    EXPECT_THROW((void)net::decode_header(h.data(), n), net::FrameError)
        << "short header of " << n << " bytes accepted";
  }
}

TEST(FrameTest, BadMagicThrows) {
  // Flipping any single magic byte must be fatal — garbage can never be
  // misparsed as a frame boundary.
  for (std::size_t i = 0; i < net::kMagic.size(); ++i) {
    auto h = valid_header(1, 0);
    h[i] ^= 0xFF;
    EXPECT_THROW((void)net::decode_header(h.data(), h.size()),
                 net::FrameError);
  }
}

TEST(FrameTest, VersionMismatchThrows) {
  auto h = valid_header(1, 0);
  h[4] = static_cast<std::uint8_t>(net::kProtocolVersion + 1);
  h[5] = 0;
  EXPECT_THROW((void)net::decode_header(h.data(), h.size()), net::FrameError);
}

TEST(FrameTest, OversizedDeclaredLengthThrows) {
  // A hostile length prefix above kMaxPayload must be rejected at the
  // header, before any allocation or recv of that size can happen.
  const std::uint32_t huge = net::kMaxPayload + 1;
  auto h = valid_header(1, 0);
  std::memcpy(h.data() + 8, &huge, sizeof(huge));
  EXPECT_THROW((void)net::decode_header(h.data(), h.size()), net::FrameError);
}

TEST(FrameTest, MaxPayloadLengthAccepted) {
  auto h = valid_header(1, net::kMaxPayload);
  EXPECT_EQ(net::decode_header(h.data(), h.size()).payload_len,
            net::kMaxPayload);
}

TEST(FrameTest, ZeroLengthPayloadOk) {
  const auto f = net::encode_frame(7, {});
  EXPECT_EQ(f.size(), net::kHeaderSize);
  const auto dec = net::decode_header(f.data(), f.size());
  EXPECT_EQ(dec.type, 7);
  EXPECT_EQ(dec.payload_len, 0u);
}

// --- Loopback socket behaviour ------------------------------------------

struct Loopback {
  net::Listener listener{0};
  net::Socket client;
  net::Socket server;

  Loopback() {
    std::thread t([this] { server = listener.accept(); });
    client = net::connect_tcp("127.0.0.1", listener.port());
    t.join();
  }
};

TEST(FrameTest, FramesRoundTripOverSocket) {
  Loopback lo;
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  ASSERT_TRUE(net::write_frame(lo.client, 3, payload));
  ASSERT_TRUE(net::write_frame(lo.client, 4, {}));

  net::Frame f;
  ASSERT_TRUE(net::read_frame(lo.server, f));
  EXPECT_EQ(f.type, 3);
  EXPECT_EQ(f.payload, payload);
  ASSERT_TRUE(net::read_frame(lo.server, f));
  EXPECT_EQ(f.type, 4);
  EXPECT_TRUE(f.payload.empty());
}

TEST(FrameTest, CleanEofAtBoundaryIsFalse) {
  Loopback lo;
  ASSERT_TRUE(net::write_frame(lo.client, 1, {1, 2}));
  lo.client.close();

  net::Frame f;
  ASSERT_TRUE(net::read_frame(lo.server, f));
  EXPECT_FALSE(net::read_frame(lo.server, f));  // EOF between frames: clean
}

TEST(FrameTest, GarbageMidStreamThrows) {
  Loopback lo;
  // One valid frame, then bytes that are not a header. The valid frame
  // must arrive intact; the garbage must surface as FrameError, not as a
  // bogus frame or a hang.
  ASSERT_TRUE(net::write_frame(lo.client, 2, {42}));
  const std::uint8_t junk[net::kHeaderSize] = {'j', 'u', 'n', 'k', 0xFF,
                                               0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                               0xFF, 0xFF};
  ASSERT_TRUE(lo.client.send_all(junk, sizeof(junk)));

  net::Frame f;
  ASSERT_TRUE(net::read_frame(lo.server, f));
  EXPECT_EQ(f.payload, std::vector<std::uint8_t>{42});
  EXPECT_THROW((void)net::read_frame(lo.server, f), net::FrameError);
}

TEST(FrameTest, TruncatedMidPayloadThrows) {
  Loopback lo;
  // Header declares 100 payload bytes; the peer dies after 3. EOF
  // mid-frame is truncation, not a clean close.
  std::vector<std::uint8_t> h(net::kHeaderSize);
  net::encode_header(h.data(), 5, 100);
  ASSERT_TRUE(lo.client.send_all(h.data(), h.size()));
  const std::uint8_t part[3] = {1, 2, 3};
  ASSERT_TRUE(lo.client.send_all(part, sizeof(part)));
  lo.client.close();

  net::Frame f;
  EXPECT_THROW((void)net::read_frame(lo.server, f), net::FrameError);
}

TEST(FrameTest, TruncatedMidHeaderThrows) {
  Loopback lo;
  const std::uint8_t half[6] = {'T', 'V', 'S', 'R', 1, 0};
  ASSERT_TRUE(lo.client.send_all(half, sizeof(half)));
  lo.client.close();

  net::Frame f;
  EXPECT_THROW((void)net::read_frame(lo.server, f), net::FrameError);
}

TEST(FrameTest, ChannelCloseWakesBlockedReader) {
  Loopback lo;
  net::Channel ch(std::move(lo.server));
  net::Frame f;
  bool open = true;
  std::thread reader([&] { open = ch.recv(f); });
  // Reader is blocked in recv with no bytes in flight; close() must wake
  // it with clean-EOF semantics (the teardown path everywhere in dist/).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  reader.join();
  EXPECT_FALSE(open);
  EXPECT_FALSE(ch.send(1, {}));  // poisoned after close
}

}  // namespace
