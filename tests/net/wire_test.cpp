// Wire codec unit tests: the bounds-checked reader is the foundation every
// protocol decoder stands on, so hostile-input behaviour (truncation,
// oversized length prefixes, trailing garbage) is pinned here once.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace {

TEST(WireTest, PrimitivesRoundTrip) {
  net::WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.bytes({1, 2, 3});

  net::WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireTest, LittleEndianLayout) {
  net::WireWriter w;
  w.u32(0x11223344);
  const auto& b = w.data();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x44);
  EXPECT_EQ(b[1], 0x33);
  EXPECT_EQ(b[2], 0x22);
  EXPECT_EQ(b[3], 0x11);
}

TEST(WireTest, EmptyStringAndBytesRoundTrip) {
  net::WireWriter w;
  w.str("");
  w.bytes({});
  net::WireReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(WireTest, ReadPastEndThrows) {
  const std::vector<std::uint8_t> three = {1, 2, 3};
  {
    net::WireReader r(three);
    EXPECT_THROW((void)r.u32(), net::WireError);
  }
  {
    net::WireReader r(three);
    EXPECT_THROW((void)r.u64(), net::WireError);
  }
  {
    net::WireReader r(nullptr, 0);
    EXPECT_THROW((void)r.u8(), net::WireError);
  }
}

TEST(WireTest, ReaderStopsAtFirstShortField) {
  // After a throw the reader has not advanced past the end: remaining()
  // still reports what was actually there.
  const std::vector<std::uint8_t> buf = {1, 2};
  net::WireReader r(buf);
  EXPECT_THROW((void)r.u32(), net::WireError);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(WireTest, LengthPrefixBeyondBufferThrows) {
  // A str/bytes length prefix larger than the remaining bytes must throw,
  // never return a short read or touch memory past the buffer.
  net::WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');    // only 1 present
  net::WireReader r(w.data());
  EXPECT_THROW((void)r.str(), net::WireError);
}

TEST(WireTest, HugeLengthPrefixThrows) {
  net::WireWriter w;
  w.u32(0xFFFFFFFFu);
  net::WireReader r(w.data());
  EXPECT_THROW((void)r.bytes(), net::WireError);
}

TEST(WireTest, TrailingBytesRejectedByExpectEnd) {
  net::WireWriter w;
  w.u16(7);
  w.u8(99);  // one byte the decoder does not consume
  net::WireReader r(w.data());
  (void)r.u16();
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.expect_end(), net::WireError);
}

}  // namespace
