// Deterministic regression tests for the rollback/commit race family.
//
// Each race is forced without threads: a chaos hook installed at the named
// unlock-window site *synchronously* injects the racing operation at the
// exact point where the lock is dropped. On the pre-fix code every one of
// these tests fails (double natural build / stacked re-open / interleaved
// flush / unbounded bookkeeping); the fixes make them pass — and keep them
// passing under any thread schedule, since the single-threaded injection is
// a legal interleaving of the concurrent one.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/speculator.h"
#include "core/wait_buffer.h"
#include "sre/chaos_point.h"
#include "sre/runtime.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using tvs::SpecConfig;
using tvs::Speculator;
using tvs::VerificationPolicy;
using tvs::WaitBuffer;

/// Chaos hook that fires a caller-supplied injection the first time the
/// target site is crossed (later crossings are ignored).
struct InjectOnce final : sre::chaos::Hook {
  std::string_view target;
  std::function<void()> inject;
  int fired = 0;

  void on_point(const char* site) noexcept override {
    if (fired == 0 && target == site) {
      ++fired;
      inject();
    }
  }
};

/// Runs every queued task to completion (checks included).
void drain(Runtime& rt) {
  std::uint64_t t = 1000;
  while (sre::TaskPtr task = rt.next_task()) {
    sre::TaskContext ctx{rt, *task, t};
    task->run(ctx);
    rt.on_task_finished(task, ++t);
  }
}

struct Probe {
  std::vector<sre::Epoch> chains;
  std::vector<sre::Epoch> commits;
  std::vector<sre::Epoch> rollbacks;
  int naturals = 0;
};

Speculator<double>::Callbacks callbacks(Probe& probe) {
  Speculator<double>::Callbacks cb;
  cb.build_chain = [&probe](const double&, sre::Epoch e, std::uint32_t) {
    probe.chains.push_back(e);
  };
  cb.within_tolerance = [](const double& g, const double& cur) {
    return std::abs(g - cur) <= 0.1;
  };
  cb.on_commit = [&probe](sre::Epoch e, std::uint64_t) {
    probe.commits.push_back(e);
  };
  cb.on_rollback = [&probe](sre::Epoch e, std::uint64_t) {
    probe.rollbacks.push_back(e);
  };
  cb.build_natural = [&probe](const double&, std::uint64_t) {
    ++probe.naturals;
  };
  return cb;
}

// --- Race 1: a final estimate lands inside the rollback unlock window -----
//
// on_verdict (failing check) drops the lock around abort_epoch/on_rollback.
// A final estimate arriving in that window finds a coherent Idle machine and
// builds the natural path. The verdict's continuation then relocks, sees
// latest_is_final_, and — without the generation re-validation — builds the
// natural path a SECOND time: duplicate output downstream.
TEST(ChaosRegression, FinalEstimateInRollbackWindowBuildsNaturalOnce) {
  Runtime rt(DispatchPolicy::Balanced);
  Probe probe;
  Speculator<double> spec(rt, {.step_size = 1, .verify = VerificationPolicy::full()},
                          callbacks(probe));

  InjectOnce hook;
  hook.target = "speculator.rollback_window";
  hook.inject = [&spec] { spec.on_estimate(5.0, 3, /*is_final=*/true, 30); };
  sre::chaos::ScopedHook guard(&hook);

  spec.on_estimate(1.0, 1, false, 10);  // opens an epoch (guess 1.0)
  ASSERT_EQ(probe.chains.size(), 1u);
  spec.on_estimate(5.0, 2, false, 20);  // out of tolerance: check will fail
  drain(rt);                            // verdict → rollback window → inject

  EXPECT_EQ(probe.naturals, 1) << "natural path must be built exactly once";
  EXPECT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_TRUE(probe.commits.empty());
  EXPECT_EQ(spec.state(), Speculator<double>::State::Natural);
  EXPECT_TRUE(spec.finished());
}

// Variant: a non-final estimate in the same window re-opens speculation.
// The continuation must NOT stack its own immediate re-speculation on top —
// that would build a third chain and orphan the racer's epoch (its checks
// would compare against the wrong guess and its wait-buffer entries would
// never be settled by the speculator that abandoned it).
TEST(ChaosRegression, EstimateInRollbackWindowReopensWithoutStacking) {
  Runtime rt(DispatchPolicy::Balanced);
  Probe probe;
  Speculator<double> spec(rt, {.step_size = 1, .verify = VerificationPolicy::full()},
                          callbacks(probe));

  InjectOnce hook;
  hook.target = "speculator.rollback_window";
  hook.inject = [&spec] { spec.on_estimate(7.0, 3, /*is_final=*/false, 30); };
  sre::chaos::ScopedHook guard(&hook);

  spec.on_estimate(1.0, 1, false, 10);
  spec.on_estimate(5.0, 2, false, 20);
  drain(rt);

  ASSERT_EQ(probe.chains.size(), 2u)
      << "exactly one re-speculation: the injected estimate's";
  ASSERT_TRUE(spec.active_epoch().has_value());
  EXPECT_EQ(*spec.active_epoch(), probe.chains[1]);
  EXPECT_EQ(probe.rollbacks.size(), 1u);
  EXPECT_EQ(probe.naturals, 0);
}

// The late window (after on_rollback) must obey the same rule.
TEST(ChaosRegression, FinalEstimateInLateRollbackWindowBuildsNaturalOnce) {
  Runtime rt(DispatchPolicy::Balanced);
  Probe probe;
  Speculator<double> spec(rt, {.step_size = 1, .verify = VerificationPolicy::full()},
                          callbacks(probe));

  InjectOnce hook;
  hook.target = "speculator.rollback_window_late";
  hook.inject = [&spec] { spec.on_estimate(5.0, 3, /*is_final=*/true, 30); };
  sre::chaos::ScopedHook guard(&hook);

  spec.on_estimate(1.0, 1, false, 10);
  spec.on_estimate(5.0, 2, false, 20);
  drain(rt);

  EXPECT_EQ(probe.naturals, 1);
  EXPECT_TRUE(spec.finished());
}

// --- Race 2: an add races the commit flush ---------------------------------
//
// Pre-fix, commit() marked the epoch Committed and THEN flushed with the
// lock released; an add arriving mid-flush saw Committed and passed straight
// through to the sink — interleaving with (here: jumping ahead of) the
// ordered flush. Post-fix the epoch stays in Flushing until the drain loop
// empties pending_, so the racing add queues behind the in-flight batch and
// is emitted by the committer afterwards.
TEST(ChaosRegression, AddDuringCommitFlushQueuesBehindFlush) {
  std::vector<int> order;
  WaitBuffer<int, int> buf(
      [&order](const int& key, int&&, std::uint64_t) { order.push_back(key); });

  InjectOnce hook;
  hook.target = "wait_buffer.flush_window";
  hook.inject = [&buf] { buf.add(1, 0, 0, 99); };  // key 0 sorts first
  sre::chaos::ScopedHook guard(&hook);

  buf.add(1, 1, 10, 1);
  buf.add(1, 2, 20, 2);
  buf.add(1, 3, 30, 3);
  buf.commit(1, 100);

  // The pre-commit entries flush in key order; the racing add drains in a
  // follow-up batch. Pre-fix this came out [0, 1, 2, 3].
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));

  buf.add(1, 9, 90, 200);  // epoch is pass-through only now
  EXPECT_EQ(order.back(), 9);
  EXPECT_EQ(buf.total_pending(), 0u);
}

// A sink that re-enters the buffer mid-flush must queue, not deadlock or
// interleave (the commit lock is released around every sink call).
TEST(ChaosRegression, ReentrantSinkAddQueuesBehindFlush) {
  std::vector<int> order;
  WaitBuffer<int, int>* handle = nullptr;
  WaitBuffer<int, int> buf([&](const int& key, int&&, std::uint64_t now) {
    order.push_back(key);
    if (key < 100) handle->add(1, key + 100, 0, now);
  });
  handle = &buf;

  buf.add(1, 1, 0, 1);
  buf.add(1, 2, 0, 2);
  buf.commit(1, 10);

  EXPECT_EQ(order, (std::vector<int>{1, 2, 101, 102}));
  EXPECT_EQ(buf.total_pending(), 0u);
}

// --- Race 3: unbounded per-epoch bookkeeping --------------------------------
//
// A long streaming run settles thousands of epochs. Pre-fix the runtime kept
// an empty epoch_tasks_ map per epoch forever (exactly what
// queue_depths().open_epochs counts) and the WaitBuffer kept a status entry
// per settled epoch.
TEST(ChaosRegression, RuntimeEpochBookkeepingBoundedOver10kEpochs) {
  Runtime rt(DispatchPolicy::Balanced);
  for (int i = 0; i < 10'000; ++i) {
    const sre::Epoch e = rt.open_epoch();
    auto task = rt.make_task("spec", sre::TaskClass::Speculative, e,
                             /*depth=*/1, /*cost_us=*/1, [](sre::TaskContext&) {});
    rt.submit(task);
    drain(rt);
    rt.mark_epoch_committed(e);
  }
  const auto depths = rt.queue_depths();
  EXPECT_EQ(depths.open_epochs, 0u);
  EXPECT_EQ(depths.epoch_tasks, 0u);
}

// Cross-epoch destroy propagation must also release the victim's entry: a
// blocked consumer in epoch B killed by aborting its producer's epoch A
// never reaches the finish path that normally erases it.
TEST(ChaosRegression, CrossEpochAbortReleasesVictimBookkeeping) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch a = rt.open_epoch();
  const sre::Epoch b = rt.open_epoch();
  auto producer = rt.make_task("prod", sre::TaskClass::Speculative, a, 1, 1,
                               [](sre::TaskContext&) {});
  auto consumer = rt.make_task("cons", sre::TaskClass::Speculative, b, 1, 1,
                               [](sre::TaskContext&) {});
  rt.add_dependency(producer, consumer);
  rt.submit(producer);
  rt.submit(consumer);  // blocked behind producer

  rt.abort_epoch(a);  // destroy signal reaches the epoch-b consumer

  const auto depths = rt.queue_depths();
  EXPECT_EQ(depths.open_epochs, 0u);
  EXPECT_EQ(depths.epoch_tasks, 0u);
  EXPECT_EQ(rt.blocked_count(), 0u);
}

TEST(ChaosRegression, WaitBufferStatusBoundedOver10kEpochs) {
  std::size_t emitted = 0;
  WaitBuffer<int, int> buf(
      [&emitted](const int&, int&&, std::uint64_t) { ++emitted; },
      /*retire_window=*/8);
  for (sre::Epoch e = 1; e <= 10'000; ++e) {
    buf.add(e, 0, 1, e);
    if (e % 3 == 0) {
      buf.drop(e);
    } else {
      buf.commit(e, e);
    }
  }
  EXPECT_LE(buf.tracked_epochs(), 9u);  // retire_window + newest settled
  EXPECT_EQ(buf.total_pending(), 0u);
  EXPECT_GT(emitted, 0u);

  // A straggler for a long-retired epoch is discarded, not resurrected.
  buf.add(1, 5, 1, 0);
  EXPECT_EQ(buf.late_discards(), 1u);
  EXPECT_LE(buf.tracked_epochs(), 9u);
}

}  // namespace
