// Seeded WaitBuffer torture sweep: several real threads hammer one buffer
// with adds, commits and racing drops against a hostile sink (slow under
// chaos sleeps, and re-entrant — it adds shadow entries back into the buffer
// mid-flush). Oracles: exactly-once per (epoch, key), every commit-window
// emission precedes every later pass-through for that epoch, nothing stays
// pending, and the watermark GC keeps the status map bounded.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "stress/replay.h"
#include "stress/torture.h"

namespace {

using stress::Replayer;
using stress::TortureOptions;
using stress::TortureReport;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

TEST(WaitBufferTorture, SeededSweep) {
  const std::uint64_t base = env_u64("TVS_TORTURE_BASE_SEED", 1);
  const std::uint64_t seeds = env_u64("TVS_TORTURE_SEEDS", 200);
  for (std::uint64_t s = base; s < base + seeds; ++s) {
    const TortureOptions opt = TortureOptions::for_seed(s);
    const TortureReport rep = stress::run_wait_buffer_torture(opt);
    if (rep.ok) continue;

    Replayer replayer(&stress::run_wait_buffer_torture);
    const stress::ReplayResult shrunk = replayer.replay(opt);
    FAIL() << "wait-buffer torture failed: " << rep.failure
           << "\n  seed=" << s << " workers=" << opt.workers
           << "\n  minimal: workers=" << shrunk.minimal.workers
           << " estimates=" << shrunk.minimal.estimates
           << " chain=" << shrunk.minimal.chain_tasks << " ("
           << (shrunk.reproduced ? shrunk.failure : "did not re-reproduce")
           << ")\n  replay with TVS_TORTURE_BASE_SEED=" << s
           << " TVS_TORTURE_SEEDS=1\n  chaos trace of minimal run:\n"
           << shrunk.trace;
  }
}

TEST(WaitBufferTorture, PinnedSeedEmitsThroughHostileSink) {
  TortureOptions opt = TortureOptions::for_seed(6);  // even: GC window on
  const TortureReport rep = stress::run_wait_buffer_torture(opt);
  EXPECT_TRUE(rep.ok) << rep.failure;
  EXPECT_GT(rep.sink_emits, 0u);
  EXPECT_GT(rep.chaos_decisions, 0u);
}

}  // namespace
