// Harness self-tests: the ChaosSchedule's decisions are deterministic per
// seed, the FaultPlan path is observable end-to-end through the threaded
// executor, and the Replayer confirms + shrinks a failing configuration to
// a minimal one with a stable trace.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "sre/chaos_point.h"
#include "sre/observer.h"
#include "sre/runtime.h"
#include "sre/threaded_executor.h"
#include "stress/chaos_schedule.h"
#include "stress/replay.h"
#include "stress/torture.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using stress::ChaosOptions;
using stress::ChaosSchedule;
using stress::Replayer;
using stress::TortureOptions;
using stress::TortureReport;

TEST(ChaosSchedule, SameSeedSameDecisions) {
  ChaosOptions opts;
  opts.record = true;
  opts.sleep_prob = 0.2;
  opts.max_sleep_us = 1;
  ChaosSchedule a(42, opts);
  ChaosSchedule b(42, opts);
  for (int i = 0; i < 50; ++i) {
    a.on_point("site.alpha");
    b.on_point("site.alpha");
    if (i % 3 == 0) {
      a.on_point("site.beta");
      b.on_point("site.beta");
    }
  }
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.trace_text(), b.trace_text());
  EXPECT_FALSE(a.trace_text().empty());
}

TEST(ChaosSchedule, SeedsDiverge) {
  ChaosOptions opts;
  opts.record = true;
  opts.max_sleep_us = 1;
  ChaosSchedule a(1, opts);
  ChaosSchedule b(2, opts);
  for (int i = 0; i < 200; ++i) {
    a.on_point("site");
    b.on_point("site");
  }
  EXPECT_NE(a.trace_text(), b.trace_text());
}

TEST(ChaosSchedule, UninstalledPointIsNoOp) {
  ASSERT_EQ(sre::chaos::installed(), nullptr);
  SRE_CHAOS_POINT("anywhere");  // must not crash
  ChaosSchedule hook(7);
  {
    sre::chaos::ScopedHook guard(&hook);
    EXPECT_EQ(sre::chaos::installed(), &hook);
    SRE_CHAOS_POINT("anywhere");
  }
  EXPECT_EQ(sre::chaos::installed(), nullptr);
  EXPECT_EQ(hook.decisions(), 1u);
}

TEST(FaultPlan, CertainFailureKillsEveryTask) {
  struct FaultCounter final : sre::Observer {
    std::atomic<int> injected{0};
    void on_fault_injected(sre::TaskId, bool failed, std::uint64_t) override {
      if (failed) injected.fetch_add(1);
    }
  } obs;

  ChaosOptions opts;
  opts.yield_prob = 0.0;
  opts.sleep_prob = 0.0;
  opts.fail_prob = 1.0;
  ChaosSchedule plan(3, opts);

  Runtime rt(DispatchPolicy::Balanced);
  rt.set_observer(&obs);
  rt.set_fault_plan(&plan);
  sre::ThreadedExecutor ex(rt, {.workers = 2});

  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    rt.submit(rt.make_task("victim", sre::TaskClass::Natural,
                           sre::kNaturalEpoch, 1, 1,
                           [&ran](sre::TaskContext&) { ran.fetch_add(1); }));
  }
  ex.run();

  EXPECT_EQ(ran.load(), 0) << "a failed task's body must not run";
  EXPECT_EQ(obs.injected.load(), 8);
  EXPECT_EQ(rt.counters().tasks_aborted, 8u);
}

TEST(FaultPlan, DelayStillRunsTheBody) {
  ChaosOptions opts;
  opts.yield_prob = 0.0;
  opts.sleep_prob = 0.0;
  opts.delay_prob = 1.0;
  opts.max_delay_us = 5;
  ChaosSchedule plan(4, opts);

  Runtime rt(DispatchPolicy::Balanced);
  rt.set_fault_plan(&plan);
  sre::ThreadedExecutor ex(rt, {.workers = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    rt.submit(rt.make_task("slow", sre::TaskClass::Natural, sre::kNaturalEpoch,
                           1, 1,
                           [&ran](sre::TaskContext&) { ran.fetch_add(1); }));
  }
  ex.run();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(rt.counters().tasks_aborted, 0u);
}

// The replayer against a synthetic scenario with a known failure predicate:
// it must confirm, shrink to the predicate's boundary and record a trace.
TEST(Replayer, ConfirmsAndShrinksToMinimal) {
  auto scenario = [](const TortureOptions& opt) {
    TortureReport rep;
    rep.seed = opt.seed;
    if (opt.estimates >= 6) {
      rep.fail("synthetic failure");
    }
    if (opt.chaos.record) rep.trace = "site#0 none\n";
    return rep;
  };

  TortureOptions failing = TortureOptions::for_seed(11);
  failing.estimates = 32;
  failing.chaos.fail_prob = 0.05;

  Replayer replayer(scenario, /*attempts_per_step=*/2);
  const stress::ReplayResult result = replayer.replay(failing);

  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.failure, "synthetic failure");
  EXPECT_EQ(result.minimal.workers, 1u);
  EXPECT_EQ(result.minimal.burst, 1u);
  EXPECT_EQ(result.minimal.chain_tasks, 1u);
  EXPECT_EQ(result.minimal.estimates, 8u)  // halving below 8 → 4 < 6 passes
      << "shrink must stop at the smallest still-failing size";
  EXPECT_EQ(result.minimal.chaos.fail_prob, 0.0);
  EXPECT_FALSE(result.trace.empty());
}

TEST(Replayer, ReportsUnreproducedFailure) {
  auto scenario = [](const TortureOptions& opt) {
    TortureReport rep;
    rep.seed = opt.seed;
    return rep;  // always passes
  };
  Replayer replayer(scenario, 2);
  const stress::ReplayResult result =
      replayer.replay(TortureOptions::for_seed(5));
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.runs, 2u);
}

// A full torture scenario run is itself deterministic in its *decisions*
// (not its interleaving): same seed, same chaos-decision trace shape.
TEST(Harness, TortureReportCarriesDiagnostics) {
  TortureOptions opt = TortureOptions::for_seed(1);
  opt.estimates = 8;
  opt.chaos.record = true;
  const TortureReport rep = stress::run_speculator_torture(opt);
  EXPECT_TRUE(rep.ok) << rep.failure;
  EXPECT_GT(rep.chaos_decisions, 0u);
  EXPECT_FALSE(rep.trace.empty());
  EXPECT_TRUE(rep.finished);
}

}  // namespace
