// Seeded speculator torture sweep: the full Speculator + WaitBuffer stack on
// the real threaded executor, under chaos yields/sleeps, estimate bursts,
// rollback storms and (every fifth seed) injected task failures and latency
// spikes. Every run checks the oracles in stress/torture.h; a failing seed
// is confirmed and shrunk by the Replayer so the assertion message carries a
// minimal reproducer.
//
// Env knobs (used by tools/ci.sh torture):
//   TVS_TORTURE_BASE_SEED  first seed of the sweep      (default 1)
//   TVS_TORTURE_SEEDS      number of seeds              (default 200)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "stress/replay.h"
#include "stress/torture.h"

namespace {

using stress::Replayer;
using stress::TortureOptions;
using stress::TortureReport;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string describe(const TortureOptions& o) {
  return "seed=" + std::to_string(o.seed) +
         " workers=" + std::to_string(o.workers) +
         " estimates=" + std::to_string(o.estimates) +
         " burst=" + std::to_string(o.burst) +
         " chain=" + std::to_string(o.chain_tasks) +
         " step=" + std::to_string(o.step_size) +
         " verify=" + std::to_string(o.verify_every) +
         " adaptive=" + std::to_string(o.adaptive_restart) +
         " fail_prob=" + std::to_string(o.chaos.fail_prob);
}

TEST(SpeculatorTorture, SeededSweep) {
  const std::uint64_t base = env_u64("TVS_TORTURE_BASE_SEED", 1);
  const std::uint64_t seeds = env_u64("TVS_TORTURE_SEEDS", 200);
  for (std::uint64_t s = base; s < base + seeds; ++s) {
    const TortureOptions opt = TortureOptions::for_seed(s);
    const TortureReport rep = stress::run_speculator_torture(opt);
    if (rep.ok) continue;

    Replayer replayer(&stress::run_speculator_torture);
    const stress::ReplayResult shrunk = replayer.replay(opt);
    FAIL() << "speculator torture failed: " << rep.failure << "\n  at "
           << describe(opt) << "\n  minimal reproducer ("
           << (shrunk.reproduced ? shrunk.failure : "did not re-reproduce")
           << "):\n  " << describe(shrunk.minimal)
           << "\n  replay with TVS_TORTURE_BASE_SEED=" << s
           << " TVS_TORTURE_SEEDS=1\n  chaos trace of minimal run:\n"
           << shrunk.trace;
  }
}

// One pinned seed with a meaningful storm keeps the report fields honest
// (the sweep only checks oracles; this checks the torture actually tortures).
TEST(SpeculatorTorture, PinnedSeedExercisesRollbacks) {
  TortureOptions opt = TortureOptions::for_seed(9);
  opt.storm_rate = 0.6;
  opt.verify_every = 1;  // Full verification: every estimate checks
  opt.adaptive_restart = false;
  const TortureReport rep = stress::run_speculator_torture(opt);
  EXPECT_TRUE(rep.ok) << rep.failure;
  EXPECT_TRUE(rep.finished);
  EXPECT_GT(rep.epochs_opened, 1u) << "storm should force re-speculation";
  EXPECT_GT(rep.rollbacks, 0u);
  EXPECT_GT(rep.chaos_decisions, 0u);
}

}  // namespace
