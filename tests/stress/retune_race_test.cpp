// Control-plane retune vs. speculation concurrency (runs under the tsan CI
// slice via the sre_core label).
//
// The control plane calls Speculator::retune while estimates and check
// verdicts are in flight. The speculator's contract is that a retune is
// just another mu_-serialized writer: the unlock windows (chaos points
// speculator.open_window, spawn_check_window, commit_window,
// rollback_window, natural_window) re-validate generation state when the
// lock is re-taken, so a config swap landing *inside* such a window must
// never corrupt epoch accounting — and tsan must see no unsynchronized
// access. Two attacks:
//
//  * a chaos hook that *synchronously* injects a retune at every unlock
//    window crossing — the worst possible placement, deterministically;
//  * a free-running retune hammer thread against a chaos-yielding
//    multi-worker run — the probabilistic, genuinely-parallel version.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "core/speculator.h"
#include "sre/chaos_point.h"
#include "sre/threaded_executor.h"
#include "stress/chaos_schedule.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using stress::ChaosOptions;
using stress::ChaosSchedule;
using tvs::SpecConfig;
using tvs::Speculator;
using tvs::VerificationPolicy;

/// Thread-safe probe: check verdicts run on executor workers.
struct Probe {
  std::atomic<std::uint64_t> chains{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> rollbacks{0};
  std::atomic<std::uint64_t> naturals{0};

  Speculator<double>::Callbacks callbacks() {
    Speculator<double>::Callbacks cb;
    cb.build_chain = [this](const double&, sre::Epoch, std::uint32_t) {
      chains.fetch_add(1, std::memory_order_relaxed);
    };
    cb.within_tolerance = [](const double& g, const double& cur) {
      return std::abs(g - cur) <= 0.1;
    };
    cb.on_commit = [this](sre::Epoch, std::uint64_t) {
      commits.fetch_add(1, std::memory_order_relaxed);
    };
    cb.on_rollback = [this](sre::Epoch, std::uint64_t) {
      rollbacks.fetch_add(1, std::memory_order_relaxed);
    };
    cb.build_natural = [this](const double&, std::uint64_t) {
      naturals.fetch_add(1, std::memory_order_relaxed);
    };
    return cb;
  }
};

/// Estimate stream with periodic jumps: enough rollbacks to cross every
/// verdict-side unlock window, enough stability to also commit sometimes.
double estimate_value(std::uint32_t k) {
  return (k % 7 == 0) ? 100.0 * k : 100.0 * (k - k % 7);
}

SpecConfig tight_config() {
  SpecConfig c;
  c.step_size = 4;
  c.verify = VerificationPolicy::full();
  c.adaptive_restart = true;
  c.restart_min_defer = 8;
  return c;
}

SpecConfig loose_config() {
  SpecConfig c;
  c.step_size = 1;
  c.verify = VerificationPolicy::full();
  return c;
}

/// Injects a retune synchronously at every speculator unlock window.
struct RetuneAtWindows final : sre::chaos::Hook {
  std::atomic<Speculator<double>*> spec{nullptr};
  std::atomic<std::uint64_t> injected{0};

  void on_point(const char* site) noexcept override {
    Speculator<double>* s = spec.load(std::memory_order_acquire);
    if (s == nullptr) return;
    if (std::strncmp(site, "speculator.", 11) != 0) return;
    const std::uint64_t n = injected.fetch_add(1, std::memory_order_relaxed);
    s->retune(n % 2 == 0 ? tight_config() : loose_config());
  }
};

TEST(RetuneRace, RetuneInsideEveryUnlockWindowIsHarmless) {
  RetuneAtWindows hook;
  sre::chaos::ScopedHook guard(&hook);

  Runtime rt(DispatchPolicy::Balanced);
  Probe probe;
  Speculator<double> spec(rt, loose_config(), probe.callbacks());
  hook.spec.store(&spec, std::memory_order_release);

  constexpr std::uint32_t kEstimates = 512;
  std::uint64_t t = 0;
  for (std::uint32_t k = 1; k <= kEstimates; ++k) {
    spec.on_estimate(estimate_value(k), k, k == kEstimates, ++t);
    // Drain verdicts as they spawn, so every verdict-side window crosses
    // with the freshest injected config.
    while (sre::TaskPtr task = rt.next_task()) {
      sre::TaskContext ctx{rt, *task, ++t};
      task->run(ctx);
      rt.on_task_finished(task, ++t);
    }
  }
  hook.spec.store(nullptr, std::memory_order_release);

  EXPECT_GT(hook.injected.load(), 0u) << "windows must actually be crossed";
  EXPECT_EQ(spec.retunes(), hook.injected.load());
  EXPECT_GT(probe.chains.load(), 0u);
  // Epoch accounting stays coherent through every mid-window config swap:
  // each opened chain resolves exactly once, and the stream terminates.
  EXPECT_EQ(probe.commits.load() + probe.rollbacks.load(),
            probe.chains.load());
  EXPECT_TRUE(spec.finished() || spec.committed());
  EXPECT_EQ(probe.commits.load(), spec.committed() ? 1u : 0u);
}

TEST(RetuneRace, HammerThreadAgainstChaoticWorkers) {
  ChaosOptions opts;
  opts.yield_prob = 0.7;
  opts.sleep_prob = 0.1;
  opts.max_sleep_us = 20;
  ChaosSchedule plan(11, opts);
  sre::chaos::ScopedHook guard(&plan);

  Runtime rt(DispatchPolicy::Balanced);
  sre::ThreadedExecutor ex(rt, {.workers = 3});
  Probe probe;
  Speculator<double> spec(rt, loose_config(), probe.callbacks());

  // The estimate stream runs as one natural task (estimates are ordered by
  // contract); its check tasks fan out to the other workers, crossing the
  // verdict-side windows in parallel with the hammer below.
  constexpr std::uint32_t kEstimates = 800;
  rt.submit(rt.make_task(
      "feeder", sre::TaskClass::Natural, sre::kNaturalEpoch, 1, 1,
      [&spec](sre::TaskContext& ctx) {
        for (std::uint32_t k = 1; k <= kEstimates; ++k) {
          spec.on_estimate(estimate_value(k), k, k == kEstimates,
                           ctx.now_us + k);
        }
      }));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hammered{0};
  std::thread hammer([&] {
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      spec.retune(n % 2 == 0 ? tight_config() : loose_config());
      ++n;
      // Mixed readers on the same mutex, racing the verdict path.
      (void)spec.config();
      (void)spec.wants_estimate(static_cast<std::uint32_t>(n % 64), false);
      std::this_thread::yield();
    }
    hammered.store(n, std::memory_order_release);
  });

  ex.run();
  stop.store(true, std::memory_order_release);
  hammer.join();

  EXPECT_GT(hammered.load(), 0u);
  EXPECT_EQ(spec.retunes(), hammered.load());
  EXPECT_EQ(probe.commits.load() + probe.rollbacks.load(),
            probe.chains.load());
  EXPECT_TRUE(spec.finished() || spec.committed());
}

}  // namespace
