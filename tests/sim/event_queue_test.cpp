#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace {

using sim::EventQueue;
using sim::Micros;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&order](Micros) { order.push_back(3); });
  q.schedule(10, [&order](Micros) { order.push_back(1); });
  q.schedule(20, [&order](Micros) { order.push_back(2); });
  while (q.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i](Micros) { order.push_back(i); });
  }
  while (q.run_one()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, ActionsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](Micros now) {
    ++fired;
    q.schedule(now + 1, [&](Micros) { ++fired; });
  });
  while (q.run_one()) {
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 2u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(10, [](Micros) {});
  ASSERT_TRUE(q.run_one());
  EXPECT_THROW(q.schedule(5, [](Micros) {}), std::logic_error);
  q.schedule(10, [](Micros) {});  // "now" is allowed
}

TEST(EventQueue, NextTimeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.next_time(), std::logic_error);
  q.schedule(7, [](Micros) {});
  EXPECT_EQ(q.next_time(), 7u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, RunOneOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.run_one());
}

}  // namespace
