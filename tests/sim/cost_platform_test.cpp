#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/platform.h"

namespace {

using sim::CostModel;
using sim::PlatformConfig;
using sim::TaskKind;

TEST(CostModel, ScalesWithInputCount) {
  const CostModel m = CostModel::x86();
  EXPECT_EQ(m.cost(TaskKind::Reduce, 16), m.reduce_per_input_us * 16);
  EXPECT_EQ(m.cost(TaskKind::Offset, 64), m.offset_per_block_us * 64);
}

TEST(CostModel, FixedKindsIgnoreCount) {
  const CostModel m = CostModel::x86();
  EXPECT_EQ(m.cost(TaskKind::Count, 1), m.cost(TaskKind::Count, 99));
  EXPECT_EQ(m.cost(TaskKind::TreeBuild), m.tree_build_us);
  EXPECT_EQ(m.cost(TaskKind::Check), m.check_us);
  EXPECT_EQ(m.cost(TaskKind::Sink), m.sink_us);
  EXPECT_EQ(m.cost(TaskKind::Encode), m.encode_us);
}

TEST(CostModel, ChecksAreCheapRelativeToWork) {
  // "Check tasks are simple and run very quickly." (paper §IV-B)
  for (const CostModel& m : {CostModel::x86(), CostModel::cell()}) {
    EXPECT_LT(m.cost(TaskKind::Check) * 5, m.cost(TaskKind::Encode));
    EXPECT_LT(m.cost(TaskKind::Check) * 5, m.cost(TaskKind::Count));
  }
}

TEST(CostModel, CellAddsDmaOverhead) {
  const CostModel cell = CostModel::cell();
  EXPECT_GT(cell.dma_overhead_us, 0u);
  EXPECT_EQ(cell.cost(TaskKind::Sink), cell.sink_us + cell.dma_overhead_us);
}

TEST(PlatformConfig, X86HasNoStagingOrMemoryLimit) {
  const auto p = PlatformConfig::x86();
  EXPECT_EQ(p.cpus, 16u);  // the paper uses 16 worker threads
  EXPECT_EQ(p.staging_depth, 0u);
  EXPECT_TRUE(p.fits_memory(1u << 30));
}

TEST(PlatformConfig, CellModelsLocalStores) {
  const auto p = PlatformConfig::cell();
  EXPECT_EQ(p.cpus, 16u);
  EXPECT_EQ(p.staging_depth, 4u);       // multiple buffering of four tasks
  EXPECT_EQ(p.task_mem_limit, 32u * 1024);  // 256 KiB / 4 overlaid tasks
  EXPECT_TRUE(p.fits_memory(32 * 1024));
  EXPECT_FALSE(p.fits_memory(32 * 1024 + 1));
}

TEST(PlatformConfig, ReduceSixteenToOneFitsCellBudget) {
  // The paper's stated reason for 16:1 ratios on Cell: 16 histograms of
  // 256×8 bytes exactly fill the 32 KiB task budget.
  const auto p = PlatformConfig::cell();
  EXPECT_TRUE(p.fits_memory(16 * 256 * 8));
  EXPECT_FALSE(p.fits_memory(17 * 256 * 8));
}

TEST(PlatformConfig, CpuCountConfigurable) {
  EXPECT_EQ(PlatformConfig::x86(4).cpus, 4u);
  EXPECT_EQ(PlatformConfig::cell(8).cpus, 8u);
}

}  // namespace
