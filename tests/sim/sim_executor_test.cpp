#include "sim/sim_executor.h"

#include <gtest/gtest.h>

#include "sim/platform.h"
#include "sre/runtime.h"

namespace {

using sim::PlatformConfig;
using sim::SimExecutor;
using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;

sre::TaskPtr timed(Runtime& rt, const std::string& name, std::uint64_t cost,
                   TaskClass cls = TaskClass::Natural, sre::Epoch epoch = 0,
                   int depth = 1) {
  return rt.make_task(name, cls, epoch, depth, cost, [](TaskContext&) {});
}

PlatformConfig cpus(unsigned n) {
  auto p = PlatformConfig::x86(n);
  return p;
}

TEST(SimExecutor, IndependentTasksPackOntoCpus) {
  // 8 tasks of 100 us on 4 CPUs → exactly two waves → makespan 200 us.
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, cpus(4));
  for (int i = 0; i < 8; ++i) {
    rt.submit(timed(rt, "t" + std::to_string(i), 100));
  }
  ex.run();
  EXPECT_EQ(ex.makespan_us(), 200u);
  for (auto busy : ex.busy_us()) {
    EXPECT_EQ(busy, 200u);
  }
}

TEST(SimExecutor, SerialChainAccumulatesTime) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, cpus(4));
  sre::TaskPtr prev;
  for (int i = 0; i < 5; ++i) {
    auto t = timed(rt, "link", 50);
    if (prev) rt.add_dependency(prev, t);
    rt.submit(t);
    prev = t;
  }
  ex.run();
  EXPECT_EQ(ex.makespan_us(), 250u);
}

TEST(SimExecutor, ArrivalsInjectAtVirtualTimes) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, cpus(1));
  std::vector<sim::Micros> seen;
  ex.schedule_arrival(1000, [&rt, &seen](sim::Micros now) {
    seen.push_back(now);
    rt.submit(rt.make_task("a", TaskClass::Natural, 0, 1, 10,
                           [](TaskContext&) {}));
  });
  ex.schedule_arrival(5000, [&seen](sim::Micros now) { seen.push_back(now); });
  ex.run();
  EXPECT_EQ(seen, (std::vector<sim::Micros>{1000, 5000}));
  EXPECT_EQ(ex.makespan_us(), 1010u);
}

TEST(SimExecutor, CompletionTimesVisibleToHooks) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, cpus(1));
  std::uint64_t done_at = 0;
  auto t = timed(rt, "t", 123);
  t->add_completion_hook(
      [&done_at](sre::Task&, std::uint64_t now) { done_at = now; });
  rt.submit(t);
  ex.run();
  EXPECT_EQ(done_at, 123u);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  auto run_once = [] {
    Runtime rt(DispatchPolicy::Balanced);
    SimExecutor ex(rt, cpus(3));
    std::vector<std::string> order;
    for (int i = 0; i < 20; ++i) {
      auto t = rt.make_task("t" + std::to_string(i), TaskClass::Natural, 0,
                            i % 4, 10 + static_cast<std::uint64_t>(i) * 3,
                            [](TaskContext&) {});
      t->add_completion_hook([&order](sre::Task& task, std::uint64_t) {
        order.push_back(task.name());
      });
      rt.submit(t);
    }
    ex.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimExecutor, ZeroCpusRejected) {
  Runtime rt(DispatchPolicy::Balanced);
  EXPECT_THROW(SimExecutor(rt, cpus(0)), std::invalid_argument);
}

TEST(SimExecutor, MemoryBudgetEnforced) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, PlatformConfig::cell(2));
  auto big = timed(rt, "big", 10);
  big->set_mem_bytes(64 * 1024);  // over the 32 KiB local-store budget
  rt.submit(big);
  EXPECT_THROW(ex.run(), std::logic_error);
}

TEST(SimExecutor, MemoryWithinBudgetRuns) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, PlatformConfig::cell(2));
  auto ok = timed(rt, "ok", 10);
  ok->set_mem_bytes(32 * 1024);
  rt.submit(ok);
  ex.run();
  EXPECT_EQ(rt.counters().tasks_executed, 1u);
}

// --- Staging (multiple buffering) ------------------------------------------

TEST(SimExecutor, StagedAbortedTasksAreDiscardedUnrun) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, PlatformConfig::cell(1));
  const sre::Epoch e = rt.open_epoch();

  // One long natural task occupies the CPU while speculative tasks stage
  // behind it; the rollback fires mid-run via a completion hook.
  bool spec_ran = false;
  auto blocker = rt.make_task("blocker", TaskClass::Natural, 0, 9, 1000,
                              [](TaskContext&) {});
  blocker->add_completion_hook([&rt, e](sre::Task&, std::uint64_t) {
    rt.abort_epoch(e);
  });
  rt.submit(blocker);
  for (int i = 0; i < 3; ++i) {
    auto s = rt.make_task("spec" + std::to_string(i), TaskClass::Speculative,
                          e, 1, 100,
                          [&spec_ran](TaskContext&) { spec_ran = true; });
    rt.submit(s);
  }
  ex.run();
  EXPECT_FALSE(spec_ran) << "staged tasks of a rolled-back epoch must die";
  EXPECT_EQ(rt.counters().tasks_aborted, 3u);
}

TEST(SimExecutor, ConservativeWithStagingStarvesSpeculation) {
  // With naturals continuously staged, the conservative policy must not
  // dispatch a speculative task until the naturals are exhausted.
  Runtime rt(DispatchPolicy::Conservative);
  SimExecutor ex(rt, PlatformConfig::cell(1));
  const sre::Epoch e = rt.open_epoch();

  std::vector<std::string> order;
  auto track = [&order](const sre::TaskPtr& t) {
    t->add_completion_hook([&order](sre::Task& task, std::uint64_t) {
      order.push_back(task.name());
    });
  };
  // Speculative task is deeper (would win on depth) and submitted first.
  auto spec = timed(rt, "spec", 10, TaskClass::Speculative, e, /*depth=*/99);
  track(spec);
  rt.submit(spec);
  for (int i = 0; i < 4; ++i) {
    auto n = timed(rt, "nat" + std::to_string(i), 10, TaskClass::Natural, 0, 1);
    track(n);
    rt.submit(n);
  }
  ex.run();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.back(), "spec");
}

TEST(SimExecutor, AggressiveWithStagingPrefersSpeculation) {
  Runtime rt(DispatchPolicy::Aggressive);
  SimExecutor ex(rt, PlatformConfig::cell(1));
  const sre::Epoch e = rt.open_epoch();
  std::vector<std::string> order;
  auto spec = timed(rt, "spec", 10, TaskClass::Speculative, e, 1);
  spec->add_completion_hook([&order](sre::Task& t, std::uint64_t) {
    order.push_back(t.name());
  });
  auto nat = timed(rt, "nat", 10, TaskClass::Natural, 0, 99);
  nat->add_completion_hook([&order](sre::Task& t, std::uint64_t) {
    order.push_back(t.name());
  });
  rt.submit(nat);
  rt.submit(spec);
  ex.run();
  EXPECT_EQ(order.front(), "spec");
}

TEST(SimExecutor, StagingStillCompletesEverything) {
  Runtime rt(DispatchPolicy::Balanced);
  SimExecutor ex(rt, PlatformConfig::cell(3));
  for (int i = 0; i < 100; ++i) {
    rt.submit(timed(rt, "t", 7));
  }
  ex.run();
  EXPECT_EQ(rt.counters().tasks_executed, 100u);
  EXPECT_TRUE(rt.quiescent());
}

}  // namespace
