#include "sre/supertask.h"

#include <gtest/gtest.h>

namespace {

using sre::SuperTask;

TEST(SuperTask, LocalSubscribersReceivePayloads) {
  SuperTask root("root");
  int received = 0;
  root.subscribe_value<int>("port", [&received](const int& v, std::uint64_t) {
    received = v;
  });
  EXPECT_EQ(root.publish_value<int>("port", 42, 0), 1u);
  EXPECT_EQ(received, 42);
}

TEST(SuperTask, MultipleSubscribersAllFire) {
  SuperTask root("root");
  int count = 0;
  for (int i = 0; i < 3; ++i) {
    root.subscribe("p", [&count](const SuperTask::Payload&, std::uint64_t) {
      ++count;
    });
  }
  EXPECT_EQ(root.publish("p", std::make_shared<const int>(1), 0), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SuperTask, UnmatchedPortEscalatesToParent) {
  // "direct the flow of data between its child Tasks and SuperTasks, and
  //  eventually to its parent as it completes."
  SuperTask root("root");
  SuperTask& child = root.add_child("child");
  SuperTask& grandchild = child.add_child("grandchild");

  std::string seen;
  root.subscribe_value<std::string>(
      "result", [&seen](const std::string& v, std::uint64_t) { seen = v; });

  EXPECT_EQ(grandchild.publish_value<std::string>("result", "done", 7), 1u);
  EXPECT_EQ(seen, "done");
}

TEST(SuperTask, LocalSubscriberStopsEscalation) {
  SuperTask root("root");
  SuperTask& child = root.add_child("child");
  int at_root = 0;
  int at_child = 0;
  root.subscribe("p", [&](const SuperTask::Payload&, std::uint64_t) { ++at_root; });
  child.subscribe("p", [&](const SuperTask::Payload&, std::uint64_t) { ++at_child; });
  child.publish("p", std::make_shared<const int>(0), 0);
  EXPECT_EQ(at_child, 1);
  EXPECT_EQ(at_root, 0);
}

TEST(SuperTask, UnroutablePayloadFiresNothing) {
  SuperTask root("root");
  EXPECT_EQ(root.publish("nowhere", std::make_shared<const int>(0), 0), 0u);
}

TEST(SuperTask, SpeculationBasisTriggersSpeculation) {
  // "We append a flag to tasks that produce data that can be a basis for
  //  speculation. When this flag is asserted, the SRE understands that it
  //  must ... advance normal program execution, and ... trigger a
  //  speculative task."
  SuperTask root("root");
  root.mark_speculation_basis("histogram");
  EXPECT_TRUE(root.is_speculation_basis("histogram"));
  EXPECT_FALSE(root.is_speculation_basis("other"));

  int normal = 0;
  int speculative = 0;
  root.subscribe("histogram",
                 [&](const SuperTask::Payload&, std::uint64_t) { ++normal; });
  root.set_speculation_trigger(
      [&](const SuperTask::Payload&, std::uint64_t) { ++speculative; });

  root.publish("histogram", std::make_shared<const int>(1), 0);
  EXPECT_EQ(normal, 1) << "normal execution must still advance";
  EXPECT_EQ(speculative, 1) << "and the speculative task must be triggered";

  root.publish("other-port", std::make_shared<const int>(1), 0);
  EXPECT_EQ(speculative, 1) << "unflagged ports must not trigger speculation";
}

TEST(SuperTask, ChildrenAreOwnedAndNamed) {
  SuperTask root("root");
  SuperTask& a = root.add_child("a");
  SuperTask& b = root.add_child("b");
  EXPECT_EQ(root.children().size(), 2u);
  EXPECT_EQ(a.name(), "a");
  EXPECT_EQ(b.parent(), &root);
}

}  // namespace
