#include "sre/ready_pool.h"

#include <gtest/gtest.h>

#include "sre/runtime.h"

namespace {

using sre::DispatchPolicy;
using sre::ReadyPool;
using sre::TaskClass;
using sre::TaskPtr;

TaskPtr make(sre::Runtime& rt, TaskClass cls, int depth,
             const std::string& name = "t") {
  return rt.make_task(name, cls, cls == TaskClass::Speculative ? 1 : 0, depth,
                      10, [](sre::TaskContext&) {});
}

// Pushes via a runtime so ready_seq is assigned in submission order.
struct PoolFixture : ::testing::Test {
  sre::Runtime rt{DispatchPolicy::Balanced};
};

TEST_F(PoolFixture, ControlAlwaysWins) {
  ReadyPool pool(DispatchPolicy::Aggressive);
  auto spec = make(rt, TaskClass::Speculative, 100);
  auto control = make(rt, TaskClass::Control, 0);
  // Assign ready order via runtime-internal sequence: emulate by pushing in
  // any order — control must pop first regardless.
  pool.push(spec);
  pool.push(control);
  EXPECT_EQ(pool.pop(), control);
  EXPECT_EQ(pool.pop(), spec);
}

TEST_F(PoolFixture, DepthFavoredThenFcfs) {
  ReadyPool pool(DispatchPolicy::NonSpeculative);
  auto shallow1 = make(rt, TaskClass::Natural, 1, "s1");
  auto deep = make(rt, TaskClass::Natural, 5, "d");
  auto shallow2 = make(rt, TaskClass::Natural, 1, "s2");
  // FCFS within equal depth follows push order here because ready_seq
  // defaults to 0 for all: use id tie-break (creation order).
  pool.push(shallow1);
  pool.push(deep);
  pool.push(shallow2);
  EXPECT_EQ(pool.pop(), deep);
  EXPECT_EQ(pool.pop(), shallow1);
  EXPECT_EQ(pool.pop(), shallow2);
}

TEST_F(PoolFixture, ConservativePrefersNatural) {
  ReadyPool pool(DispatchPolicy::Conservative);
  auto spec = make(rt, TaskClass::Speculative, 100);
  auto natural = make(rt, TaskClass::Natural, 1);
  pool.push(spec);
  pool.push(natural);
  EXPECT_EQ(pool.pop(), natural);
  EXPECT_EQ(pool.pop(), spec);
  EXPECT_EQ(pool.natural_pops(), 1u);
  EXPECT_EQ(pool.speculative_pops(), 1u);
}

TEST_F(PoolFixture, AggressivePrefersSpeculative) {
  ReadyPool pool(DispatchPolicy::Aggressive);
  auto spec = make(rt, TaskClass::Speculative, 1);
  auto natural = make(rt, TaskClass::Natural, 100);
  pool.push(spec);
  pool.push(natural);
  EXPECT_EQ(pool.pop(), spec);
  EXPECT_EQ(pool.pop(), natural);
}

TEST_F(PoolFixture, BalancedAlternatesStrictly) {
  ReadyPool pool(DispatchPolicy::Balanced);
  std::vector<TaskPtr> specs;
  std::vector<TaskPtr> naturals;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(make(rt, TaskClass::Speculative, 1));
    naturals.push_back(make(rt, TaskClass::Natural, 1));
    pool.push(specs.back());
    pool.push(naturals.back());
  }
  int spec_count = 0;
  int natural_count = 0;
  for (int i = 0; i < 8; ++i) {
    auto t = pool.pop();
    ASSERT_NE(t, nullptr);
    (t->task_class() == TaskClass::Speculative ? spec_count : natural_count)++;
    if (i == 3) {
      EXPECT_EQ(spec_count, 2);
      EXPECT_EQ(natural_count, 2);
    }
  }
  EXPECT_EQ(spec_count, 4);
  EXPECT_EQ(natural_count, 4);
}

TEST_F(PoolFixture, BalancedFallsThroughWhenOneSideEmpty) {
  ReadyPool pool(DispatchPolicy::Balanced);
  auto n1 = make(rt, TaskClass::Natural, 1);
  auto n2 = make(rt, TaskClass::Natural, 1);
  pool.push(n1);
  pool.push(n2);
  EXPECT_NE(pool.pop(), nullptr);
  EXPECT_NE(pool.pop(), nullptr);
  EXPECT_EQ(pool.pop(), nullptr);
}

TEST_F(PoolFixture, SpecVetoForcesNaturalOnly) {
  ReadyPool pool(DispatchPolicy::Aggressive);
  auto spec = make(rt, TaskClass::Speculative, 100);
  auto natural = make(rt, TaskClass::Natural, 1);
  pool.push(spec);
  pool.push(natural);
  EXPECT_EQ(pool.pop(/*spec_allowed=*/false), natural);
  EXPECT_EQ(pool.pop(/*spec_allowed=*/false), nullptr);  // only spec remains
  EXPECT_EQ(pool.pop(/*spec_allowed=*/true), spec);
}

TEST_F(PoolFixture, EraseRemovesSpecificTask) {
  ReadyPool pool(DispatchPolicy::Balanced);
  auto a = make(rt, TaskClass::Natural, 1);
  auto b = make(rt, TaskClass::Natural, 1);
  pool.push(a);
  pool.push(b);
  EXPECT_TRUE(pool.erase(a));
  EXPECT_FALSE(pool.erase(a));
  EXPECT_EQ(pool.pop(), b);
}

TEST_F(PoolFixture, NonSpeculativePolicyRejectsSpecPush) {
  ReadyPool pool(DispatchPolicy::NonSpeculative);
  auto spec = make(rt, TaskClass::Speculative, 1);
  EXPECT_THROW(pool.push(spec), std::logic_error);
}

TEST_F(PoolFixture, SizesTrackQueues) {
  ReadyPool pool(DispatchPolicy::Balanced);
  EXPECT_TRUE(pool.empty());
  pool.push(make(rt, TaskClass::Natural, 1));
  pool.push(make(rt, TaskClass::Speculative, 1));
  pool.push(make(rt, TaskClass::Control, 1));
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.natural_size(), 1u);
  EXPECT_EQ(pool.speculative_size(), 1u);
  EXPECT_EQ(pool.control_size(), 1u);
}

}  // namespace
