#include "sre/threaded_executor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "sre/slot.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::ThreadedExecutor;

TEST(ThreadedExecutor, RunsSingleTask) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2});
  std::atomic<bool> ran{false};
  auto t = rt.make_task("t", TaskClass::Natural, 0, 1, 1,
                        [&ran](TaskContext&) { ran = true; });
  rt.submit(t);
  ex.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(rt.quiescent());
}

TEST(ThreadedExecutor, RespectsDependencyOrder) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 4});
  auto slot = sre::make_slot<int>();
  std::atomic<int> result{0};
  auto p = rt.make_task("p", TaskClass::Natural, 0, 1, 1,
                        [slot](TaskContext&) { slot->set(7); });
  auto c = rt.make_task("c", TaskClass::Natural, 0, 2, 1,
                        [slot, &result](TaskContext&) { result = slot->get(); });
  rt.add_dependency(p, c);
  rt.submit(p);
  rt.submit(c);
  ex.run();
  EXPECT_EQ(result, 7);
}

TEST(ThreadedExecutor, ManyParallelTasksAllComplete) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 8});
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    rt.submit(rt.make_task("t" + std::to_string(i), TaskClass::Natural, 0, 1,
                           1, [&count](TaskContext&) { ++count; }));
  }
  ex.run();
  EXPECT_EQ(count, 500);
  EXPECT_EQ(rt.counters().tasks_executed, 500u);
}

TEST(ThreadedExecutor, ArrivalsInjectWorkOverTime) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2});
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    ex.schedule_arrival(static_cast<std::uint64_t>(i) * 500,
                        [&rt, &count](std::uint64_t) {
                          rt.submit(rt.make_task(
                              "arr", TaskClass::Natural, 0, 1, 1,
                              [&count](TaskContext&) { ++count; }));
                        });
  }
  ex.run();
  EXPECT_EQ(count, 10);
}

TEST(ThreadedExecutor, ArrivalTimeScaleCompressesSchedule) {
  Runtime rt(DispatchPolicy::Balanced);
  // 2 s of schedule scaled down to 2 ms; the test passing quickly IS the
  // assertion.
  ThreadedExecutor ex(rt, {.workers = 1, .arrival_time_scale = 0.001});
  std::atomic<bool> ran{false};
  ex.schedule_arrival(2'000'000, [&rt, &ran](std::uint64_t) {
    rt.submit(rt.make_task("late", TaskClass::Natural, 0, 1, 1,
                           [&ran](TaskContext&) { ran = true; }));
  });
  const auto start = std::chrono::steady_clock::now();
  ex.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(ran);
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(ThreadedExecutor, HooksSpawnFollowOnWork) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2});
  std::atomic<int> phase{0};
  auto first = rt.make_task("first", TaskClass::Natural, 0, 1, 1,
                            [&phase](TaskContext&) { phase = 1; });
  first->add_completion_hook([&rt, &phase](sre::Task&, std::uint64_t) {
    rt.submit(rt.make_task("second", TaskClass::Natural, 0, 1, 1,
                           [&phase](TaskContext&) { phase = 2; }));
  });
  rt.submit(first);
  ex.run();
  EXPECT_EQ(phase, 2);
}

TEST(ThreadedExecutor, TaskExceptionSurfacesFromRun) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2});
  rt.submit(rt.make_task("boom", TaskClass::Natural, 0, 1, 1,
                         [](TaskContext&) {
                           throw std::runtime_error("kaboom");
                         }));
  EXPECT_THROW(ex.run(), std::runtime_error);
}

TEST(ThreadedExecutor, EmptyRunTerminates) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2});
  ex.run();  // no tasks, no arrivals: must return promptly
  EXPECT_TRUE(rt.quiescent());
}

TEST(ThreadedExecutor, ZeroWorkersRejected) {
  Runtime rt(DispatchPolicy::Balanced);
  EXPECT_THROW(ThreadedExecutor(rt, {.workers = 0}), std::invalid_argument);
}

// Central-mode (single-lock baseline) variants: the legacy dispatch path
// stays available for A/B measurement and must keep passing the same
// behavioural contract.

TEST(ThreadedExecutorCentral, RunsSingleTask) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2,
                           .dispatch = sre::DispatchMode::Central});
  std::atomic<bool> ran{false};
  auto t = rt.make_task("t", TaskClass::Natural, 0, 1, 1,
                        [&ran](TaskContext&) { ran = true; });
  rt.submit(t);
  ex.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(rt.quiescent());
}

TEST(ThreadedExecutorCentral, HooksSpawnFollowOnWork) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2,
                           .dispatch = sre::DispatchMode::Central});
  std::atomic<int> phase{0};
  auto first = rt.make_task("first", TaskClass::Natural, 0, 1, 1,
                            [&phase](TaskContext&) { phase = 1; });
  first->add_completion_hook([&rt, &phase](sre::Task&, std::uint64_t) {
    rt.submit(rt.make_task("second", TaskClass::Natural, 0, 1, 1,
                           [&phase](TaskContext&) { phase = 2; }));
  });
  rt.submit(first);
  ex.run();
  EXPECT_EQ(phase, 2);
}

TEST(ThreadedExecutorCentral, DeepSerialChainCompletes) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 4,
                           .dispatch = sre::DispatchMode::Central});
  std::atomic<int> counter{0};
  sre::TaskPtr prev;
  for (int i = 0; i < 200; ++i) {
    auto t = rt.make_task("link" + std::to_string(i), TaskClass::Natural, 0, 1,
                          1, [&counter, i](TaskContext&) {
                            EXPECT_EQ(counter.fetch_add(1), i);
                          });
    if (prev) rt.add_dependency(prev, t);
    prev = t;
    rt.submit(t);
  }
  ex.run();
  EXPECT_EQ(counter, 200);
}

TEST(ThreadedExecutor, DeepSerialChainCompletes) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 4});
  std::atomic<int> counter{0};
  sre::TaskPtr prev;
  for (int i = 0; i < 200; ++i) {
    auto t = rt.make_task("link" + std::to_string(i), TaskClass::Natural, 0, 1,
                          1, [&counter, i](TaskContext&) {
                            // Serial chain: each link must observe its index.
                            EXPECT_EQ(counter.fetch_add(1), i);
                          });
    if (prev) rt.add_dependency(prev, t);
    prev = t;
    rt.submit(t);
  }
  ex.run();
  EXPECT_EQ(counter, 200);
}

}  // namespace
