// User-defined rollback routines (paper §II-A extension): speculative tasks
// with *reversible* side effects register a compensation; rollback replays
// compensations in reverse completion order, commit discards them.
#include <gtest/gtest.h>

#include "sre/runtime.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::TaskPtr;

void drain(Runtime& rt) {
  std::uint64_t t = 0;
  while (TaskPtr task = rt.next_task()) {
    TaskContext ctx{rt, *task, t};
    task->run(ctx);
    rt.on_task_finished(task, ++t);
  }
}

struct Ledger {
  std::vector<int> entries;

  TaskPtr append_task(Runtime& rt, sre::Epoch epoch, int value) {
    auto task = rt.make_task("append" + std::to_string(value),
                             TaskClass::Speculative, epoch, 1, 10,
                             [this, value](TaskContext&) {
                               entries.push_back(value);
                             });
    task->set_rollback_routine([this, value] {
      // Compensation: remove the appended value (must be the last one if
      // undo order is reverse completion order).
      ASSERT_FALSE(entries.empty());
      EXPECT_EQ(entries.back(), value);
      entries.pop_back();
    });
    return task;
  }
};

TEST(RollbackRoutine, UndoRunsInReverseCompletionOrder) {
  Runtime rt(DispatchPolicy::Balanced);
  Ledger ledger;
  const sre::Epoch e = rt.open_epoch();
  // Serial chain so completion order is deterministic: 1, 2, 3.
  TaskPtr prev;
  for (int v : {1, 2, 3}) {
    auto t = ledger.append_task(rt, e, v);
    if (prev) rt.add_dependency(prev, t);
    rt.submit(t);
    prev = t;
  }
  drain(rt);
  EXPECT_EQ(ledger.entries, (std::vector<int>{1, 2, 3}));

  rt.abort_epoch(e);
  EXPECT_TRUE(ledger.entries.empty())
      << "all side effects must be compensated";
}

TEST(RollbackRoutine, CommitMakesSideEffectsPermanent) {
  Runtime rt(DispatchPolicy::Balanced);
  Ledger ledger;
  const sre::Epoch e = rt.open_epoch();
  rt.submit(ledger.append_task(rt, e, 7));
  drain(rt);
  rt.mark_epoch_committed(e);
  // A (buggy, late) abort after commit must not undo anything.
  rt.abort_epoch(e);
  EXPECT_EQ(ledger.entries, (std::vector<int>{7}));
}

TEST(RollbackRoutine, UnfinishedTasksContributeNoUndo) {
  Runtime rt(DispatchPolicy::Balanced);
  Ledger ledger;
  const sre::Epoch e = rt.open_epoch();
  auto done = ledger.append_task(rt, e, 1);
  auto pending = ledger.append_task(rt, e, 2);
  rt.add_dependency(done, pending);
  rt.submit(done);
  rt.submit(pending);

  // Run only the first task; the second stays Ready.
  TaskPtr t = rt.next_task();
  TaskContext ctx{rt, *t, 0};
  t->run(ctx);
  rt.on_task_finished(t, 1);
  ASSERT_EQ(ledger.entries, (std::vector<int>{1}));

  rt.abort_epoch(e);
  EXPECT_TRUE(ledger.entries.empty())
      << "only the completed task's effect is undone; the pending task "
         "never ran, so nothing else changes";
}

TEST(RollbackRoutine, AbortedInFlightTaskNeverLogsUndo) {
  Runtime rt(DispatchPolicy::Balanced);
  Ledger ledger;
  const sre::Epoch e = rt.open_epoch();
  rt.submit(ledger.append_task(rt, e, 5));
  TaskPtr t = rt.next_task();
  TaskContext ctx{rt, *t, 0};
  t->run(ctx);             // side effect happens...
  rt.abort_epoch(e);       // ...rollback lands while the task is in flight
  rt.on_task_finished(t, 1);
  // The abort-flag path reclaims the task without logging its undo; the
  // side effect is compensated by... nothing. This is exactly why the
  // baseline model forbids side effects in tasks without routines: an
  // in-flight task's effect would leak. The documented contract is that
  // rollback routines are only guaranteed for *completed* tasks, so bodies
  // with side effects must be idempotent against re-execution — assert the
  // current behaviour so a change is a conscious decision.
  EXPECT_EQ(ledger.entries, (std::vector<int>{5}));
}

TEST(RollbackRoutine, NaturalEpochTasksNeverLog) {
  Runtime rt(DispatchPolicy::Balanced);
  int undone = 0;
  auto task = rt.make_task("n", TaskClass::Natural, sre::kNaturalEpoch, 1, 10,
                           [](TaskContext&) {});
  task->set_rollback_routine([&undone] { ++undone; });
  rt.submit(task);
  drain(rt);
  rt.abort_epoch(sre::kNaturalEpoch);  // nonsensical but must be harmless
  EXPECT_EQ(undone, 0);
}

TEST(RollbackRoutine, IndependentEpochsKeepSeparateLogs) {
  Runtime rt(DispatchPolicy::Balanced);
  Ledger ledger;
  const sre::Epoch e1 = rt.open_epoch();
  const sre::Epoch e2 = rt.open_epoch();
  rt.submit(ledger.append_task(rt, e1, 10));
  rt.submit(ledger.append_task(rt, e2, 20));
  drain(rt);
  ASSERT_EQ(ledger.entries.size(), 2u);
  rt.abort_epoch(e2);
  EXPECT_EQ(ledger.entries, (std::vector<int>{10}));
  rt.abort_epoch(e1);
  EXPECT_TRUE(ledger.entries.empty());
}

}  // namespace
