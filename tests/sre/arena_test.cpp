#include "sre/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "huffman/byte_buf.h"
#include "sre/runtime.h"

namespace {

using sre::Arena;
using sre::ChunkPool;
using sre::EpochArenas;

TEST(ChunkPool, RecyclesChunksThroughTheFreelist) {
  auto pool = std::make_shared<ChunkPool>();
  void* c = pool->get();
  EXPECT_EQ(pool->stats().chunks_new, 1u);
  EXPECT_EQ(pool->stats().chunks_reused, 0u);
  pool->put(c);
  EXPECT_EQ(pool->free_chunks(), 1u);
  void* c2 = pool->get();
  EXPECT_EQ(c2, c);
  EXPECT_EQ(pool->stats().chunks_new, 1u);
  EXPECT_EQ(pool->stats().chunks_reused, 1u);
  pool->put(c2);
}

TEST(ChunkPool, BoundsTheIdleFreelist) {
  auto pool = std::make_shared<ChunkPool>(/*max_free=*/2);
  void* a = pool->get();
  void* b = pool->get();
  void* c = pool->get();
  pool->put(a);
  pool->put(b);
  pool->put(c);  // past max_free: released, not retained
  EXPECT_EQ(pool->free_chunks(), 2u);
}

TEST(Arena, BumpAllocationsAreDisjointAndAligned) {
  auto pool = std::make_shared<ChunkPool>();
  Arena arena(pool);
  auto s1 = arena.alloc_bytes(100);
  auto s2 = arena.alloc_bytes(200);
  ASSERT_EQ(s1.size(), 100u);
  ASSERT_EQ(s2.size(), 200u);
  // Disjoint ranges out of one chunk.
  EXPECT_GE(s2.data(), s1.data() + s1.size());
  std::memset(s1.data(), 0xAA, s1.size());
  std::memset(s2.data(), 0xBB, s2.size());
  EXPECT_EQ(s1[99], 0xAA);
  EXPECT_EQ(s2[0], 0xBB);

  void* p8 = arena.allocate(10, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
  void* p64 = arena.allocate(10, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);

  const auto st = pool->stats();
  EXPECT_EQ(st.allocs, 4u);
  EXPECT_EQ(st.bytes, 100u + 200u + 10u + 10u);
}

TEST(Arena, SpillsIntoFreshChunksAndReturnsThemOnDestruction) {
  auto pool = std::make_shared<ChunkPool>();
  {
    Arena arena(pool);
    // Three chunks' worth of block-sized allocations.
    for (std::size_t i = 0; i < 3 * (ChunkPool::kChunkBytes / 4096); ++i) {
      auto s = arena.alloc_bytes(4096);
      s[0] = static_cast<std::uint8_t>(i);
    }
    EXPECT_GE(arena.chunk_count(), 3u);
    EXPECT_EQ(pool->free_chunks(), 0u);
  }
  // Destruction returned every chunk for reuse.
  EXPECT_GE(pool->free_chunks(), 3u);
  Arena again(pool);
  (void)again.alloc_bytes(100);
  EXPECT_GE(pool->stats().chunks_reused, 1u);
}

TEST(Arena, OversizeAllocationsGetDedicatedStorage) {
  auto pool = std::make_shared<ChunkPool>();
  Arena arena(pool);
  auto big = arena.alloc_bytes(ChunkPool::kChunkBytes + 1);
  ASSERT_EQ(big.size(), ChunkPool::kChunkBytes + 1);
  big[ChunkPool::kChunkBytes] = 7;  // the far end is writable
  EXPECT_EQ(pool->stats().oversize, 1u);
  // A normal allocation still works afterwards.
  auto small = arena.alloc_bytes(16);
  small[0] = 1;
}

TEST(EpochArenas, LanesAreDistinctAndLazilyCreated) {
  auto pool = std::make_shared<ChunkPool>();
  EpochArenas arenas(pool, /*epoch=*/42);
  EXPECT_EQ(arenas.epoch(), 42u);
  EXPECT_EQ(arenas.active_lanes(), 0u);
  Arena& l0 = arenas.lane(0);
  Arena& l1 = arenas.lane(1);
  EXPECT_NE(&l0, &l1);
  EXPECT_EQ(&l0, &arenas.lane(0));  // stable per worker
  EXPECT_EQ(arenas.active_lanes(), 2u);
}

TEST(EpochArenas, ByteBufKeepaliveOutlivesTheArenaHandle) {
  auto pool = std::make_shared<ChunkPool>();
  auto arenas = std::make_shared<EpochArenas>(pool, 1);
  auto out = arenas->lane(0).alloc_bytes(64);
  std::memset(out.data(), 0x5C, out.size());
  huff::ByteBuf buf(out.data(), out.size(), arenas);
  // Dropping the chain's handle must NOT free the memory: the committed
  // result's view co-owns the epoch arenas.
  arenas.reset();
  EXPECT_EQ(pool->free_chunks(), 0u);
  for (std::size_t i = 0; i < buf.size(); ++i) ASSERT_EQ(buf[i], 0x5C);
  // Releasing the last view is the destroy signal: chunks come back.
  buf = huff::ByteBuf();
  EXPECT_EQ(pool->free_chunks(), 1u);
}

TEST(EpochArenas, RollbackStyleDropRecyclesChunksForTheNextEpoch) {
  auto pool = std::make_shared<ChunkPool>();
  {
    auto doomed = std::make_shared<EpochArenas>(pool, 7);
    (void)doomed->lane(0).alloc_bytes(1000);
    (void)doomed->lane(1).alloc_bytes(1000);
  }  // rollback: wholesale drop
  const auto st = pool->stats();
  EXPECT_EQ(st.chunks_new, 2u);
  auto next = std::make_shared<EpochArenas>(pool, 8);
  (void)next->lane(0).alloc_bytes(1000);
  (void)next->lane(1).alloc_bytes(1000);
  const auto st2 = pool->stats();
  EXPECT_EQ(st2.chunks_new, 2u);    // steady state: no new mallocs
  EXPECT_EQ(st2.chunks_reused, 2u);
}

TEST(EpochArenas, ParallelWorkersOnDistinctLanes) {
  auto pool = std::make_shared<ChunkPool>();
  auto arenas = std::make_shared<EpochArenas>(pool, 3);
  constexpr unsigned kWorkers = 8;
  std::vector<std::thread> threads;
  threads.reserve(kWorkers);
  for (unsigned w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&arenas, w] {
      for (int i = 0; i < 200; ++i) {
        auto s = arenas->lane(w).alloc_bytes(512);
        std::memset(s.data(), static_cast<int>(w), s.size());
        ASSERT_EQ(s[511], static_cast<std::uint8_t>(w));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool->stats().allocs, kWorkers * 200u);
}

TEST(Runtime, OwnsAChunkPoolAndMintsEpochArenas) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  auto arenas = rt.make_epoch_arenas(5);
  ASSERT_NE(arenas, nullptr);
  EXPECT_EQ(arenas->epoch(), 5u);
  (void)arenas->lane(0).alloc_bytes(128);
  const auto st = rt.arena_stats();
  EXPECT_EQ(st.allocs, 1u);
  EXPECT_EQ(st.bytes, 128u);
}

}  // namespace
