// Property test: the heap-based ReadyPool pops tasks in exactly the order of
// the ordered-set scheduler it replaced. The oracle below re-states the old
// std::set comparator (depth-favored, FCFS tie-break, TaskId total order)
// independently of the pool implementation, and random interleavings of
// submit / pop / rollback-erase must agree with it at every step — including
// tombstone-heavy sequences that force the lazy-deletion compaction path.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "sre/runtime.h"

namespace {

using sre::DispatchPolicy;
using sre::PriorityMode;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::TaskPtr;

struct OracleEntry {
  int depth = 0;
  std::uint64_t seq = 0;
  sre::TaskId id = 0;
  TaskPtr task;
};

// The ordering contract of the replaced std::set scheduler: deepest pipeline
// stage first (DepthFirst mode only), then first-come-first-served by
// ready_seq, then TaskId as the total-order tie-break.
struct OracleCmp {
  PriorityMode mode;
  bool operator()(const OracleEntry& a, const OracleEntry& b) const {
    if (mode == PriorityMode::DepthFirst && a.depth != b.depth) {
      return a.depth > b.depth;
    }
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.id < b.id;
  }
};

using Oracle = std::set<OracleEntry, OracleCmp>;

void insert_oracle(Oracle& oracle, const TaskPtr& t) {
  oracle.insert({t->depth(), t->ready_seq(), t->id(), t});
}

// Interleaves submits and pops of natural tasks and checks every pop against
// the oracle's minimum.
void natural_ordering_run(PriorityMode mode, unsigned seed) {
  Runtime rt(DispatchPolicy::NonSpeculative, mode);
  Oracle oracle{OracleCmp{mode}};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> depth_dist(0, 5);
  std::uniform_int_distribution<int> op_dist(0, 99);

  for (int step = 0; step < 400; ++step) {
    if (op_dist(rng) < 55) {
      auto t = rt.make_task("n" + std::to_string(step), TaskClass::Natural,
                            sre::kNaturalEpoch, depth_dist(rng), 1,
                            [](TaskContext&) {});
      rt.submit(t);
      insert_oracle(oracle, t);
    } else {
      TaskPtr got = rt.next_task();
      if (oracle.empty()) {
        ASSERT_EQ(got, nullptr) << "pool popped a task the oracle lacks";
        continue;
      }
      ASSERT_NE(got, nullptr) << "pool empty while the oracle has tasks";
      ASSERT_EQ(got->id(), oracle.begin()->id)
          << "seed " << seed << " step " << step << ": pool popped '"
          << got->name() << "' but the oracle orders '"
          << oracle.begin()->task->name() << "' first";
      rt.on_task_finished(got, 0);
      oracle.erase(oracle.begin());
    }
  }
  while (!oracle.empty()) {
    TaskPtr got = rt.next_task();
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->id(), oracle.begin()->id);
    rt.on_task_finished(got, 0);
    oracle.erase(oracle.begin());
  }
  EXPECT_EQ(rt.next_task(), nullptr);
}

// Same property for the speculative queue, with rollback erases mixed in:
// each task gets its own epoch, so aborting a random epoch removes exactly
// one ready task — from the pool via tombstone, from the oracle directly.
void speculative_ordering_run(PriorityMode mode, unsigned seed) {
  Runtime rt(DispatchPolicy::Aggressive, mode);
  Oracle oracle{OracleCmp{mode}};
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> depth_dist(0, 5);
  std::uniform_int_distribution<int> op_dist(0, 99);

  for (int step = 0; step < 400; ++step) {
    const int op = op_dist(rng);
    if (op < 50) {
      const sre::Epoch e = rt.open_epoch();
      auto t = rt.make_task("s" + std::to_string(step), TaskClass::Speculative,
                            e, depth_dist(rng), 1, [](TaskContext&) {});
      rt.submit(t);
      insert_oracle(oracle, t);
    } else if (op < 75 && !oracle.empty()) {
      // Roll back a random ready task's epoch.
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng() % oracle.size()));
      rt.abort_epoch(it->task->epoch());
      oracle.erase(it);
    } else {
      TaskPtr got = rt.next_task();
      if (oracle.empty()) {
        ASSERT_EQ(got, nullptr);
        continue;
      }
      ASSERT_NE(got, nullptr) << "pool empty while the oracle has tasks";
      ASSERT_EQ(got->id(), oracle.begin()->id)
          << "seed " << seed << " step " << step;
      rt.on_task_finished(got, 0);
      oracle.erase(oracle.begin());
    }
  }
  EXPECT_EQ(rt.ready_count(), oracle.size());
}

TEST(PoolOrderProperty, NaturalMatchesSetOracleDepthFirst) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    natural_ordering_run(PriorityMode::DepthFirst, seed);
  }
}

TEST(PoolOrderProperty, NaturalMatchesSetOracleFcfs) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    natural_ordering_run(PriorityMode::Fcfs, seed);
  }
}

TEST(PoolOrderProperty, SpeculativeWithRollbacksMatchesSetOracle) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    speculative_ordering_run(PriorityMode::DepthFirst, seed);
    speculative_ordering_run(PriorityMode::Fcfs, seed);
  }
}

TEST(PoolOrderProperty, TombstoneHeavyEraseThenDrain) {
  // Submit a large batch, roll back most of it, then drain: the survivors
  // must still come out in oracle order even after the heaps compact.
  for (unsigned seed = 100; seed < 104; ++seed) {
    Runtime rt(DispatchPolicy::Aggressive);
    Oracle oracle{OracleCmp{PriorityMode::DepthFirst}};
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> depth_dist(0, 3);
    std::vector<OracleEntry> entries;
    for (int i = 0; i < 300; ++i) {
      const sre::Epoch e = rt.open_epoch();
      auto t = rt.make_task("s" + std::to_string(i), TaskClass::Speculative, e,
                            depth_dist(rng), 1, [](TaskContext&) {});
      rt.submit(t);
      insert_oracle(oracle, t);
    }
    // Abort ~5/6 of them in random order.
    std::vector<const OracleEntry*> victims;
    for (const auto& en : oracle) victims.push_back(&en);
    std::shuffle(victims.begin(), victims.end(), rng);
    victims.resize(250);
    for (const OracleEntry* v : victims) {
      rt.abort_epoch(v->task->epoch());
    }
    for (const OracleEntry* v : victims) {
      oracle.erase(*v);
    }
    EXPECT_EQ(rt.pool().tombstones_created(), 250u);
    while (!oracle.empty()) {
      TaskPtr got = rt.next_task();
      ASSERT_NE(got, nullptr);
      ASSERT_EQ(got->id(), oracle.begin()->id);
      rt.on_task_finished(got, 0);
      oracle.erase(oracle.begin());
    }
    EXPECT_EQ(rt.next_task(), nullptr);
  }
}

}  // namespace
