// Concurrency tests for the sharded dispatch path: rollback revocation of
// tasks staged in worker-local queues, determinism of run *results* across
// the Central and Sharded executors, and accounting invariants of the
// acquire/retire counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sre/threaded_executor.h"

namespace {

using sre::DispatchMode;
using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::TaskState;
using sre::ThreadedExecutor;

/// Spin-waits (yielding) until `pred` holds or ~2 s pass; returns pred().
template <typename Pred>
bool wait_until(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// A rollback must revoke speculative tasks that are already staged in a
// worker's local queue: the worker pops them, sees the stale revocation
// stamp plus the abort flag, and retires them without running their bodies.
TEST(DispatchConcurrency, RollbackRevokesStagedTasks) {
  Runtime rt(DispatchPolicy::Aggressive);
  // One worker: it is pinned inside the blocker's body while the director
  // stages the speculative tasks into its inbox, so the rollback below is
  // guaranteed to hit tasks parked in a worker-local queue.
  ThreadedExecutor ex(rt, {.workers = 1});

  constexpr int kSpec = 4;
  std::atomic<bool> release{false};
  std::atomic<int> spec_bodies_run{0};

  ex.schedule_arrival(0, [&](std::uint64_t) {
    auto blocker = rt.make_task("blocker", TaskClass::Natural,
                                sre::kNaturalEpoch, 1, 1,
                                [&release](TaskContext&) {
                                  while (!release.load()) {
                                    std::this_thread::yield();
                                  }
                                });
    rt.submit(blocker);
    ASSERT_TRUE(wait_until(
        [&] { return blocker->state() == TaskState::Running; }));

    const sre::Epoch e = rt.open_epoch();
    std::vector<sre::TaskPtr> specs;
    for (int i = 0; i < kSpec; ++i) {
      auto t = rt.make_task("spec" + std::to_string(i),
                            TaskClass::Speculative, e, 1, 1,
                            [&spec_bodies_run](TaskContext&) {
                              ++spec_bodies_run;
                            });
      specs.push_back(t);
      rt.submit(t);
    }
    // The director stages them into the (busy) worker's inbox.
    ASSERT_TRUE(wait_until([&] {
      for (const auto& t : specs) {
        if (t->state() != TaskState::Staged) return false;
      }
      return true;
    }));

    rt.abort_epoch(e);
    for (const auto& t : specs) {
      EXPECT_TRUE(t->abort_requested());
    }
    release.store(true);
  });

  ex.run();
  EXPECT_EQ(spec_bodies_run, 0) << "revoked tasks must not run their bodies";
  EXPECT_EQ(rt.counters().tasks_aborted, static_cast<std::uint64_t>(kSpec));
  EXPECT_EQ(ex.dispatch_stats().revoked_at_pop,
            static_cast<std::uint64_t>(kSpec));
  EXPECT_TRUE(rt.quiescent());
}

struct RunTotals {
  std::uint64_t executed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t spec_executed = 0;
  std::uint64_t epochs_opened = 0;
  std::uint64_t epochs_committed = 0;

  bool operator==(const RunTotals&) const = default;
};

// One seeded workload: a natural chain plus speculative epochs that commit
// or abort based on the seed — the abort/commit decision is wired into the
// DAG (a completion hook), not the schedule, so the totals are
// schedule-independent.
RunTotals run_workload(DispatchMode mode, unsigned seed) {
  Runtime rt(DispatchPolicy::Aggressive);
  ThreadedExecutor ex(rt, {.workers = 4, .dispatch = mode});

  std::mt19937 rng(seed);
  const int chain_len = 3 + static_cast<int>(rng() % 8);
  const int n_epochs = 1 + static_cast<int>(rng() % 4);

  sre::TaskPtr prev;
  for (int i = 0; i < chain_len; ++i) {
    auto t = rt.make_task("n" + std::to_string(i), TaskClass::Natural,
                          sre::kNaturalEpoch, 1, 1, [](TaskContext&) {});
    if (prev) rt.add_dependency(prev, t);
    rt.submit(t);
    prev = t;
  }

  std::deque<std::atomic<bool>> verdicts;  // stable addresses
  for (int k = 0; k < n_epochs; ++k) {
    const bool doomed = (rng() & 1) != 0;
    const sre::Epoch e = rt.open_epoch();
    std::atomic<bool>& verdict_out = verdicts.emplace_back(false);
    // Downstream bodies wait for the verdict before finishing, so a doomed
    // epoch's abort always lands while b/c are blocked, staged or running —
    // never after they committed. Without the gate the totals would race:
    // b can reach Done in the window between a's locked retirement (which
    // releases b) and a's hook (which aborts the epoch).
    const auto gated_body = [&verdict_out](TaskContext&) {
      while (!verdict_out.load()) std::this_thread::yield();
    };
    auto a = rt.make_task("a" + std::to_string(k), TaskClass::Speculative, e,
                          2, 1, [](TaskContext&) {});
    auto b = rt.make_task("b" + std::to_string(k), TaskClass::Speculative, e,
                          2, 1, gated_body);
    auto c = rt.make_task("c" + std::to_string(k), TaskClass::Speculative, e,
                          2, 1, gated_body);
    rt.add_dependency(a, b);
    rt.add_dependency(b, c);
    // The check verdict rides on a's completion: reject rolls the epoch
    // back (b and c always die — whether still blocked, staged in a local
    // queue, or already running), accept commits it.
    a->add_completion_hook(
        [&rt, &verdict_out, e, doomed](sre::Task&, std::uint64_t) {
          if (doomed) {
            rt.abort_epoch(e);
            rt.note_rollback();
          } else {
            rt.mark_epoch_committed(e);
          }
          verdict_out.store(true);
        });
    rt.submit(a);
    rt.submit(b);
    rt.submit(c);
  }

  ex.run();
  const stats::RunCounters c = rt.counters();
  return RunTotals{c.tasks_executed, c.tasks_aborted, c.spec_tasks_executed,
                   c.epochs_opened, c.epochs_committed};
}

// The sharded executor may interleave tasks differently from the single-lock
// baseline, but the *results* — commit/abort totals — must be identical for
// the same DAG, because abort/commit decisions are data-flow, not timing.
TEST(DispatchConcurrency, DeterministicTotalsAcrossModes) {
  for (unsigned seed = 0; seed < 100; ++seed) {
    const RunTotals central = run_workload(DispatchMode::Central, seed);
    const RunTotals sharded = run_workload(DispatchMode::Sharded, seed);
    ASSERT_EQ(central.executed, sharded.executed) << "seed " << seed;
    ASSERT_EQ(central.aborted, sharded.aborted) << "seed " << seed;
    ASSERT_EQ(central.spec_executed, sharded.spec_executed)
        << "seed " << seed;
    ASSERT_EQ(central.epochs_opened, sharded.epochs_opened)
        << "seed " << seed;
    ASSERT_EQ(central.epochs_committed, sharded.epochs_committed)
        << "seed " << seed;
  }
}

// Accounting invariant: every executed task was acquired through exactly one
// of the four sources, and every staged task was fed by the director or
// self-staged.
TEST(DispatchConcurrency, AcquireSourcesSumToTasksRun) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 4});
  std::atomic<int> count{0};
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i) {
    rt.submit(rt.make_task("t" + std::to_string(i), TaskClass::Natural,
                           sre::kNaturalEpoch, 1, 1,
                           [&count](TaskContext&) { ++count; }));
  }
  ex.run();
  EXPECT_EQ(count, kTasks);
  const ThreadedExecutor::DispatchStats s = ex.dispatch_stats();
  EXPECT_EQ(s.tasks_run, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(s.revoked_at_pop, 0u);
  EXPECT_EQ(s.pop_count(), static_cast<std::uint64_t>(kTasks))
      << "local+inbox+steal+self_stage pops must cover every task exactly once";
  EXPECT_LE(s.director_stages, static_cast<std::uint64_t>(kTasks));
}

// Central mode reports no sharded-path activity: its pops all go through the
// runtime lock.
TEST(DispatchConcurrency, CentralModeHasNoShardedCounters) {
  Runtime rt(DispatchPolicy::Balanced);
  ThreadedExecutor ex(rt, {.workers = 2, .dispatch = DispatchMode::Central});
  for (int i = 0; i < 50; ++i) {
    rt.submit(rt.make_task("t" + std::to_string(i), TaskClass::Natural,
                           sre::kNaturalEpoch, 1, 1, [](TaskContext&) {}));
  }
  ex.run();
  EXPECT_EQ(rt.counters().tasks_executed, 50u);
  const ThreadedExecutor::DispatchStats s = ex.dispatch_stats();
  EXPECT_EQ(s.pop_count(), 0u);
  EXPECT_EQ(s.director_stages, 0u);
}

}  // namespace
