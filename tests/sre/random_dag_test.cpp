// Random-DAG property tests: arbitrary dependence graphs must execute in
// topological order on every engine, complete exactly once, and tolerate
// epoch rollbacks of random sub-DAGs.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/sim_executor.h"
#include "sre/runtime.h"
#include "sre/threaded_executor.h"
#include "workload/rng.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::TaskPtr;

struct RandomDag {
  std::vector<TaskPtr> tasks;
  std::vector<std::vector<std::size_t>> preds;  // indices of predecessors
  std::shared_ptr<std::vector<std::atomic<bool>>> done;

  /// Builds `n` tasks with random edges i→j (i<j) and a body that asserts
  /// every predecessor already ran — the topological-order property checks
  /// itself during execution.
  static RandomDag build(Runtime& rt, std::size_t n, std::uint64_t seed,
                         double edge_prob = 0.08) {
    RandomDag dag;
    dag.preds.resize(n);
    dag.done = std::make_shared<std::vector<std::atomic<bool>>>(n);
    wl::Rng rng(wl::splitmix64(seed));

    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (rng.uniform() < edge_prob) dag.preds[j].push_back(i);
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      auto done = dag.done;
      auto preds = dag.preds[j];
      auto task = rt.make_task(
          "t" + std::to_string(j), TaskClass::Natural, 0,
          static_cast<int>(rng.below(6)), 1 + rng.below(40),
          [done, preds, j](TaskContext&) {
            for (std::size_t p : preds) {
              ASSERT_TRUE((*done)[p].load()) << "task " << j << " ran before "
                                             << "its predecessor " << p;
            }
            (*done)[j].store(true);
          });
      dag.tasks.push_back(std::move(task));
    }
    return dag;
  }

  void wire_and_submit(Runtime& rt) const {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      for (std::size_t p : preds[j]) {
        rt.add_dependency(tasks[p], tasks[j]);
      }
    }
    for (const auto& t : tasks) rt.submit(t);
  }

  [[nodiscard]] std::size_t completed() const {
    std::size_t n = 0;
    for (const auto& d : *done) {
      if (d.load()) ++n;
    }
    return n;
  }
};

class RandomDagSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSim, ExecutesTopologicallyOnSimulator) {
  Runtime rt(DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(1 + GetParam() % 7));
  const auto dag = RandomDag::build(rt, 200, GetParam());
  dag.wire_and_submit(rt);
  ex.run();
  EXPECT_EQ(dag.completed(), 200u);
  EXPECT_EQ(rt.counters().tasks_executed, 200u);
  EXPECT_TRUE(rt.quiescent());
  EXPECT_EQ(rt.blocked_count(), 0u);
}

TEST_P(RandomDagSim, ExecutesTopologicallyOnCellStaging) {
  Runtime rt(DispatchPolicy::Balanced);
  sim::SimExecutor ex(rt, sim::PlatformConfig::cell(1 + GetParam() % 5));
  const auto dag = RandomDag::build(rt, 150, GetParam() + 100);
  dag.wire_and_submit(rt);
  ex.run();
  EXPECT_EQ(dag.completed(), 150u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSim,
                         ::testing::Range<std::uint64_t>(0, 10));

class RandomDagThreaded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagThreaded, ExecutesTopologicallyOnThreads) {
  Runtime rt(DispatchPolicy::Balanced);
  // The paper runs 16 worker threads; stress the same width here.
  sre::ThreadedExecutor ex(rt, {.workers = 16});
  const auto dag = RandomDag::build(rt, 300, GetParam() + 7);
  dag.wire_and_submit(rt);
  ex.run();
  EXPECT_EQ(dag.completed(), 300u);
  EXPECT_EQ(rt.counters().tasks_executed, 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagThreaded,
                         ::testing::Range<std::uint64_t>(0, 5));

TEST(RandomDagRollback, AbortedSubDagNeverRunsItsSuffix) {
  // A speculative sub-DAG hanging off a long natural chain: abort it midway
  // and verify nothing past the abort point executed.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Runtime rt(DispatchPolicy::Balanced);
    sim::SimExecutor ex(rt, sim::PlatformConfig::x86(4));
    const sre::Epoch e = rt.open_epoch();
    wl::Rng rng(seed);

    auto ran = std::make_shared<std::atomic<std::size_t>>(0);
    // Natural trigger that kills the epoch when it completes.
    auto killer = rt.make_task("killer", TaskClass::Natural, 0, 9,
                               200 + rng.below(400), [](TaskContext&) {});
    killer->add_completion_hook(
        [&rt, e](sre::Task&, std::uint64_t) { rt.abort_epoch(e); });
    rt.submit(killer);

    // A speculative chain of 50 tasks, 50us each.
    TaskPtr prev;
    for (int i = 0; i < 50; ++i) {
      auto t = rt.make_task("s" + std::to_string(i), TaskClass::Speculative,
                            e, 1, 50,
                            [ran](TaskContext&) { ran->fetch_add(1); });
      if (prev) rt.add_dependency(prev, t);
      rt.submit(t);
      prev = t;
    }
    ex.run();
    const std::size_t executed = ran->load();
    // The killer fires between 200 and 600 virtual us; with 4 CPUs the
    // chain advances one task per 50us, so well under 50 ran — and after
    // the abort, none.
    EXPECT_LT(executed, 50u) << "seed " << seed;
    const auto counters = rt.counters();
    EXPECT_EQ(counters.tasks_aborted + counters.spec_tasks_executed, 50u)
        << "every chain task either executed (before the abort landed) or "
           "was reclaimed";
    EXPECT_TRUE(rt.quiescent());
  }
}

}  // namespace
