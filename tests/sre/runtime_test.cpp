// Runtime unit tests: dependence tracking, dynamic graph growth, epoch
// rollback semantics. Tasks are driven manually (next_task + run +
// on_task_finished), which is exactly the executor contract.
#include "sre/runtime.h"

#include <gtest/gtest.h>

#include "sre/slot.h"

namespace {

using sre::DispatchPolicy;
using sre::Runtime;
using sre::TaskClass;
using sre::TaskContext;
using sre::TaskPtr;
using sre::TaskState;

TaskPtr noop(Runtime& rt, const std::string& name,
             TaskClass cls = TaskClass::Natural, sre::Epoch epoch = 0) {
  return rt.make_task(name, cls, epoch, 1, 10, [](TaskContext&) {});
}

/// Runs tasks to quiescence; returns execution order by name.
std::vector<std::string> drain(Runtime& rt, std::uint64_t start_time = 0) {
  std::vector<std::string> order;
  std::uint64_t t = start_time;
  while (TaskPtr task = rt.next_task()) {
    TaskContext ctx{rt, *task, t};
    task->run(ctx);
    order.push_back(task->name());
    rt.on_task_finished(task, ++t);
  }
  return order;
}

TEST(Runtime, TaskWithNoDepsIsImmediatelyReady) {
  Runtime rt(DispatchPolicy::Balanced);
  auto t = noop(rt, "a");
  EXPECT_EQ(t->state(), TaskState::Created);
  rt.submit(t);
  EXPECT_EQ(t->state(), TaskState::Ready);
  EXPECT_EQ(rt.ready_count(), 1u);
}

TEST(Runtime, DependenciesGateReadiness) {
  Runtime rt(DispatchPolicy::Balanced);
  auto producer = noop(rt, "p");
  auto consumer = noop(rt, "c");
  rt.add_dependency(producer, consumer);
  rt.submit(consumer);
  rt.submit(producer);
  EXPECT_EQ(consumer->state(), TaskState::Blocked);
  EXPECT_EQ(rt.blocked_count(), 1u);
  EXPECT_EQ(drain(rt), (std::vector<std::string>{"p", "c"}));
  EXPECT_EQ(rt.blocked_count(), 0u);
  EXPECT_TRUE(rt.quiescent());
}

TEST(Runtime, DiamondDependency) {
  Runtime rt(DispatchPolicy::Balanced);
  auto a = noop(rt, "a");
  auto b = rt.make_task("b", TaskClass::Natural, 0, 2, 10, [](TaskContext&) {});
  auto c = rt.make_task("c", TaskClass::Natural, 0, 2, 10, [](TaskContext&) {});
  auto d = rt.make_task("d", TaskClass::Natural, 0, 3, 10, [](TaskContext&) {});
  rt.add_dependency(a, b);
  rt.add_dependency(a, c);
  rt.add_dependency(b, d);
  rt.add_dependency(c, d);
  for (auto& t : {d, c, b, a}) rt.submit(t);
  const auto order = drain(rt);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
}

TEST(Runtime, DependencyOnFinishedProducerIsSatisfied) {
  Runtime rt(DispatchPolicy::Balanced);
  auto p = noop(rt, "p");
  rt.submit(p);
  drain(rt);
  ASSERT_EQ(p->state(), TaskState::Done);
  auto c = noop(rt, "c");
  rt.add_dependency(p, c);
  rt.submit(c);
  EXPECT_EQ(c->state(), TaskState::Ready);
}

TEST(Runtime, DynamicGraphGrowthFromHooks) {
  Runtime rt(DispatchPolicy::Balanced);
  auto first = noop(rt, "first");
  first->add_completion_hook([&rt](sre::Task&, std::uint64_t) {
    auto second = rt.make_task("second", TaskClass::Natural, 0, 1, 10,
                               [](TaskContext&) {});
    rt.submit(second);
  });
  rt.submit(first);
  EXPECT_EQ(drain(rt), (std::vector<std::string>{"first", "second"}));
}

TEST(Runtime, HooksReceiveCompletionTime) {
  Runtime rt(DispatchPolicy::Balanced);
  auto t = noop(rt, "t");
  std::uint64_t seen = 0;
  t->add_completion_hook(
      [&seen](sre::Task&, std::uint64_t done) { seen = done; });
  rt.submit(t);
  drain(rt, 100);
  EXPECT_EQ(seen, 101u);
}

TEST(Runtime, DoubleSubmitThrows) {
  Runtime rt(DispatchPolicy::Balanced);
  auto t = noop(rt, "t");
  rt.submit(t);
  EXPECT_THROW(rt.submit(t), std::logic_error);
}

TEST(Runtime, AddDependencyAfterSubmitThrows) {
  Runtime rt(DispatchPolicy::Balanced);
  auto p = noop(rt, "p");
  auto c = noop(rt, "c");
  rt.submit(c);
  EXPECT_THROW(rt.add_dependency(p, c), std::logic_error);
}

TEST(Runtime, SlotsCarryValuesAlongEdges) {
  Runtime rt(DispatchPolicy::Balanced);
  auto slot = sre::make_slot<int>();
  auto p = rt.make_task("p", TaskClass::Natural, 0, 1, 10,
                        [slot](TaskContext&) { slot->set(42); });
  int seen = 0;
  auto c = rt.make_task("c", TaskClass::Natural, 0, 2, 10,
                        [slot, &seen](TaskContext&) { seen = slot->get(); });
  rt.add_dependency(p, c);
  rt.submit(p);
  rt.submit(c);
  drain(rt);
  EXPECT_EQ(seen, 42);
}

// --- Rollback -------------------------------------------------------------

TEST(Runtime, AbortEpochRemovesReadyTasks) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  auto spec = noop(rt, "spec", TaskClass::Speculative, e);
  rt.submit(spec);
  EXPECT_EQ(rt.ready_count(), 1u);
  rt.abort_epoch(e);
  EXPECT_EQ(rt.ready_count(), 0u);
  EXPECT_EQ(spec->state(), TaskState::Aborted);
  EXPECT_EQ(rt.counters().tasks_aborted, 1u);
}

TEST(Runtime, AbortEpochKillsBlockedChain) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  auto a = noop(rt, "a", TaskClass::Speculative, e);
  auto b = noop(rt, "b", TaskClass::Speculative, e);
  auto c = noop(rt, "c", TaskClass::Speculative, e);
  rt.add_dependency(a, b);
  rt.add_dependency(b, c);
  for (auto& t : {c, b, a}) rt.submit(t);
  rt.abort_epoch(e);
  EXPECT_EQ(a->state(), TaskState::Aborted);
  EXPECT_EQ(b->state(), TaskState::Aborted);
  EXPECT_EQ(c->state(), TaskState::Aborted);
  EXPECT_TRUE(rt.quiescent());
}

TEST(Runtime, RunningTaskIsFlaggedNotDeleted) {
  // "Launched tasks cannot be deleted; the system marks them with an abort
  // flag, and deletes them with their content when they complete."
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  bool hook_fired = false;
  auto spec = noop(rt, "spec", TaskClass::Speculative, e);
  spec->add_completion_hook(
      [&hook_fired](sre::Task&, std::uint64_t) { hook_fired = true; });
  rt.submit(spec);
  TaskPtr running = rt.next_task();
  ASSERT_EQ(running, spec);
  EXPECT_EQ(spec->state(), TaskState::Running);

  rt.abort_epoch(e);
  EXPECT_EQ(spec->state(), TaskState::Running);  // still in flight
  EXPECT_TRUE(spec->abort_requested());

  rt.on_task_finished(running, 5);
  EXPECT_EQ(spec->state(), TaskState::Aborted);
  EXPECT_FALSE(hook_fired) << "aborted tasks must not fire hooks";
  EXPECT_EQ(rt.counters().tasks_aborted, 1u);
  EXPECT_EQ(rt.counters().tasks_executed, 0u);
}

TEST(Runtime, DestroySignalPropagatesThroughInFlightTask) {
  // A consumer wired to an in-flight aborted task dies when the producer's
  // completion is processed.
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  auto spec = noop(rt, "spec", TaskClass::Speculative, e);
  rt.submit(spec);
  TaskPtr running = rt.next_task();

  // Downstream natural-epoch task depending on the speculative value (e.g.
  // a commit step wired before the rollback hit).
  auto downstream = noop(rt, "down");
  rt.add_dependency(spec, downstream);
  rt.submit(downstream);

  rt.abort_epoch(e);
  rt.on_task_finished(running, 5);
  EXPECT_EQ(downstream->state(), TaskState::Aborted);
  EXPECT_TRUE(rt.quiescent());
}

TEST(Runtime, DependencyOnAbortedProducerKillsConsumer) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  auto spec = noop(rt, "spec", TaskClass::Speculative, e);
  rt.submit(spec);
  rt.abort_epoch(e);
  auto late = noop(rt, "late", TaskClass::Speculative, e);
  rt.add_dependency(spec, late);
  rt.submit(late);  // silently dropped: it was aborted before submission
  EXPECT_EQ(late->state(), TaskState::Aborted);
  EXPECT_EQ(rt.ready_count(), 0u);
}

TEST(Runtime, AbortedEpochDoesNotTouchOtherEpochs) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e1 = rt.open_epoch();
  const sre::Epoch e2 = rt.open_epoch();
  auto s1 = noop(rt, "s1", TaskClass::Speculative, e1);
  auto s2 = noop(rt, "s2", TaskClass::Speculative, e2);
  auto n = noop(rt, "n");
  for (auto& t : {s1, s2, n}) rt.submit(t);
  rt.abort_epoch(e1);
  EXPECT_EQ(s1->state(), TaskState::Aborted);
  EXPECT_EQ(s2->state(), TaskState::Ready);
  EXPECT_EQ(n->state(), TaskState::Ready);
}

TEST(Runtime, CountersTrackClasses) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  rt.submit(noop(rt, "n", TaskClass::Natural));
  rt.submit(noop(rt, "s", TaskClass::Speculative, e));
  rt.submit(noop(rt, "c", TaskClass::Control));
  drain(rt);
  const auto counters = rt.counters();
  EXPECT_EQ(counters.tasks_executed, 3u);
  EXPECT_EQ(counters.spec_tasks_executed, 1u);
  EXPECT_EQ(counters.checks_executed, 1u);
  EXPECT_EQ(counters.epochs_opened, 1u);
  rt.note_rollback();
  EXPECT_EQ(rt.counters().rollbacks, 1u);
  rt.mark_epoch_committed(e);
  EXPECT_EQ(rt.counters().epochs_committed, 1u);
}

TEST(Runtime, AbortedBodyIsNoopWhenRun) {
  Runtime rt(DispatchPolicy::Balanced);
  const sre::Epoch e = rt.open_epoch();
  bool executed = false;
  auto spec = rt.make_task("s", TaskClass::Speculative, e, 1, 10,
                           [&executed](TaskContext&) { executed = true; });
  rt.submit(spec);
  rt.abort_epoch(e);
  // The body was reclaimed; even if an executor raced and runs it, nothing
  // happens.
  TaskContext ctx{rt, *spec, 0};
  spec->run(ctx);
  EXPECT_FALSE(executed);
}

}  // namespace
