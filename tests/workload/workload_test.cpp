// Workload generators: determinism, surface realism, and — critically — the
// prefix-convergence profiles the experiments depend on (DESIGN.md §3).
#include <gtest/gtest.h>

#include "huffman/canonical.h"
#include "huffman/tree.h"
#include "workload/bmp_gen.h"
#include "workload/corpus.h"
#include "workload/pdf_gen.h"
#include "workload/rng.h"
#include "workload/text_gen.h"

namespace {

TEST(Rng, DeterministicForSeed) {
  wl::Rng a(42);
  wl::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  wl::Rng a(1);
  wl::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  wl::Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(DiscreteSampler, RespectsWeights) {
  const wl::DiscreteSampler sampler({1.0, 0.0, 3.0});
  wl::Rng rng(5);
  std::array<int, 3> counts{};
  for (int i = 0; i < 20000; ++i) {
    counts[sampler.sample(rng)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  EXPECT_THROW(wl::DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(wl::DiscreteSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(wl::DiscreteSampler({1.0, -1.0}), std::invalid_argument);
}

TEST(ZipfWeights, Decreasing) {
  const auto w = wl::zipf_weights(10, 1.1);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(w[i], w[i - 1]);
  }
}

class GeneratorBasics : public ::testing::TestWithParam<wl::FileKind> {};

TEST_P(GeneratorBasics, ExactSizeAndDeterminism) {
  const auto kind = GetParam();
  const auto a = wl::make_corpus(kind, 100000, 7);
  const auto b = wl::make_corpus(kind, 100000, 7);
  const auto c = wl::make_corpus(kind, 100000, 8);
  EXPECT_EQ(a.size(), 100000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_P(GeneratorBasics, PaperSizes) {
  const auto kind = GetParam();
  const std::size_t expected =
      kind == wl::FileKind::Bmp ? 2u * 1024 * 1024 : 4u * 1024 * 1024;
  EXPECT_EQ(wl::paper_size(kind), expected);
}

INSTANTIATE_TEST_SUITE_P(Kinds, GeneratorBasics,
                         ::testing::Values(wl::FileKind::Txt, wl::FileKind::Bmp,
                                           wl::FileKind::Pdf));

TEST(TextGen, LooksLikeText) {
  const auto data = wl::generate_text(50000, 3);
  std::size_t printable = 0;
  std::size_t letters = 0;
  for (std::uint8_t b : data) {
    if (b >= 32 || b == '\n') ++printable;
    if ((b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')) ++letters;
  }
  EXPECT_EQ(printable, data.size());
  EXPECT_GT(letters, data.size() * 3 / 4);
  // Stationary text should use well under 100 distinct byte values
  // (paper §IV-A: "text files use only around 70 characters").
  EXPECT_LT(huff::Histogram::of(data).distinct_symbols(), 100u);
}

TEST(BmpGen, HasValidHeader) {
  const auto data = wl::generate_bmp(100000, 3);
  ASSERT_GE(data.size(), 54u);
  EXPECT_EQ(data[0], 'B');
  EXPECT_EQ(data[1], 'M');
  // Declared file size (little-endian u32 at offset 2).
  const std::uint32_t declared = data[2] | (data[3] << 8) |
                                 (data[4] << 16) |
                                 (static_cast<std::uint32_t>(data[5]) << 24);
  EXPECT_EQ(declared, data.size());
}

TEST(BmpGen, HeadIsSmootherThanTail) {
  // The head mixes mostly-smooth pixels, the tail is mostly texture: the
  // image is high-entropy overall (paper: "BMPs ... generally have a high
  // entropy"), but the distribution shifts from head to tail — the property
  // that drives early-speculation rollbacks.
  const auto data = wl::generate_bmp(wl::paper_size(wl::FileKind::Bmp), 42);
  const auto head = huff::Histogram::of(std::span(data).subspan(54, 65536));
  const auto tail = huff::Histogram::of(
      std::span(data).subspan(data.size() - 65536, 65536));
  const double head_rate = huff::entropy_bits(head) / 65536.0;
  const double tail_rate = huff::entropy_bits(tail) / 65536.0;
  EXPECT_GT(tail_rate, 6.5);
  EXPECT_GT(tail_rate, head_rate);
  // The head tree must misprice the tail by well over the 1 % tolerance.
  const auto head_table = huff::CodeTable::from_lengths(
      huff::HuffmanTree::build(head.with_floor(1)).lengths());
  const auto tail_table = huff::CodeTable::from_lengths(
      huff::HuffmanTree::build(tail.with_floor(1)).lengths());
  const auto tail_bits = tail_table.encoded_bits(tail);
  EXPECT_GT(static_cast<double>(head_table.encoded_bits(tail)),
            static_cast<double>(tail_bits) * 1.05);
}

TEST(PdfGen, ContainsPdfMarkers) {
  const auto data = wl::generate_pdf(200000, 4);
  const std::string s(data.begin(), data.begin() + 2000);
  EXPECT_EQ(s.substr(0, 8), "%PDF-1.7");
  const std::string whole(data.begin(), data.end());
  EXPECT_NE(whole.find(" 0 obj"), std::string::npos);
  EXPECT_NE(whole.find("stream"), std::string::npos);
  EXPECT_NE(whole.find("FlateDecode"), std::string::npos);
}

// --- Convergence profiles: the experimental preconditions ------------------
//
// delta(s, k) is the tolerance-check quantity (relative size difference
// between the tree guessed at estimate s and the tree at estimate k, over
// the data seen by k). One estimate = 16 blocks of 4 KiB = 64 KiB.

double delta_pct(const std::vector<huff::Histogram>& prefixes,
                 const std::vector<huff::CodeTable>& tables, std::size_t s,
                 std::size_t k) {
  const auto cur = tables[k].encoded_bits(prefixes[k]);
  const auto guess = tables[s].encoded_bits(prefixes[k]);
  const auto diff = guess > cur ? guess - cur : cur - guess;
  return static_cast<double>(diff) / static_cast<double>(cur) * 100.0;
}

struct Profile {
  std::vector<huff::Histogram> prefixes;
  std::vector<huff::CodeTable> tables;
};

Profile profile_of(wl::FileKind kind) {
  const auto data = wl::make_corpus(kind);
  constexpr std::size_t kChunk = 64 * 1024;
  Profile p;
  huff::Histogram prefix;
  for (std::size_t off = 0; off < data.size(); off += kChunk) {
    prefix.count(std::span(data).subspan(off, std::min(kChunk, data.size() - off)));
    p.prefixes.push_back(prefix);
    p.tables.push_back(huff::CodeTable::from_lengths(
        huff::HuffmanTree::build(prefix.with_floor(1)).lengths()));
  }
  return p;
}

double max_delta_from(const Profile& p, std::size_t s) {
  double m = 0.0;
  for (std::size_t k = s; k < p.prefixes.size(); ++k) {
    m = std::max(m, delta_pct(p.prefixes, p.tables, s, k));
  }
  return m;
}

TEST(ConvergenceProfile, TxtNeverExceedsOnePercent) {
  const Profile p = profile_of(wl::FileKind::Txt);
  EXPECT_LT(max_delta_from(p, 0), 1.0);  // even the first guess holds
}

TEST(ConvergenceProfile, BmpThresholdAtStepEight) {
  const Profile p = profile_of(wl::FileKind::Bmp);
  EXPECT_GT(max_delta_from(p, 0), 1.0);   // step 1 rolls back
  EXPECT_GT(max_delta_from(p, 3), 1.0);   // step 4 rolls back
  EXPECT_LT(max_delta_from(p, 7), 1.0);   // step 8 holds
  EXPECT_LT(max_delta_from(p, 15), 1.0);  // step 16 holds
}

TEST(ConvergenceProfile, PdfThresholdAtStepSixteen) {
  const Profile p = profile_of(wl::FileKind::Pdf);
  EXPECT_GT(max_delta_from(p, 0), 1.0);    // step 1 rolls back
  EXPECT_GT(max_delta_from(p, 7), 1.0);    // step 8 rolls back
  EXPECT_LT(max_delta_from(p, 15), 1.0);   // step 16 holds
  EXPECT_LT(max_delta_from(p, 31), 1.0);   // step 32 holds
}

TEST(ConvergenceProfile, PdfToleranceBand) {
  // The Fig. 9 preconditions: the first guess fails 1 % early (at the k=8
  // check), fails 2 % only later, and never exceeds 5 %.
  const Profile p = profile_of(wl::FileKind::Pdf);
  EXPECT_GT(delta_pct(p.prefixes, p.tables, 0, 7), 1.0);
  EXPECT_LT(delta_pct(p.prefixes, p.tables, 0, 7), 2.0);
  EXPECT_GT(delta_pct(p.prefixes, p.tables, 0, 15), 2.0);
  EXPECT_LT(max_delta_from(p, 0), 5.0);
}

}  // namespace
