// Protocol codec tests: every message round-trips bit-exactly, and every
// decoder is a total function over arbitrary bytes — truncation, trailing
// garbage and out-of-range enums all become WireError, never a misparsed
// message or an over-read.
#include "dist/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

serve::LoadSnapshot sample_load() {
  serve::LoadSnapshot l;
  l.queued = {1, 2, 3};
  l.queue_capacity = {8, 16, 32};
  l.running = 4;
  l.max_concurrent = 6;
  l.done = 100;
  l.shed = 5;
  l.failed = 1;
  return l;
}

void expect_load_eq(const serve::LoadSnapshot& a, const serve::LoadSnapshot& b) {
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.queue_capacity, b.queue_capacity);
  EXPECT_EQ(a.running, b.running);
  EXPECT_EQ(a.max_concurrent, b.max_concurrent);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.failed, b.failed);
}

TEST(DistProtocolTest, HelloRoundTrip) {
  dist::HelloMsg m;
  m.peer_name = "router-7";
  const auto dec = dist::decode_hello(dist::encode(m));
  EXPECT_EQ(dec.peer_name, "router-7");
}

TEST(DistProtocolTest, HelloAckRoundTrip) {
  dist::HelloAckMsg m;
  m.node_name = "alpha";
  m.workers = 8;
  m.max_concurrent = 4;
  m.load = sample_load();
  const auto dec = dist::decode_hello_ack(dist::encode(m));
  EXPECT_EQ(dec.node_name, "alpha");
  EXPECT_EQ(dec.workers, 8u);
  EXPECT_EQ(dec.max_concurrent, 4u);
  expect_load_eq(dec.load, m.load);
}

TEST(DistProtocolTest, SubmitRoundTrip) {
  dist::SubmitMsg m;
  m.global_id = 77;
  m.spec.name = "job-a";
  m.spec.priority = serve::Priority::Bulk;
  m.spec.queue_deadline_us = 123456;
  m.spec.file = wl::FileKind::Bmp;
  m.spec.bytes = 1 << 20;
  m.spec.seed = 99;
  m.spec.input_path = "/data/x.bin";
  m.spec.policy = sre::DispatchPolicy::NonSpeculative;

  const auto dec = dist::decode_submit(dist::encode(m));
  EXPECT_EQ(dec.global_id, 77u);
  EXPECT_EQ(dec.spec.name, "job-a");
  EXPECT_EQ(dec.spec.priority, serve::Priority::Bulk);
  EXPECT_EQ(dec.spec.queue_deadline_us, 123456u);
  EXPECT_EQ(dec.spec.file, wl::FileKind::Bmp);
  EXPECT_EQ(dec.spec.bytes, 1u << 20);
  EXPECT_EQ(dec.spec.seed, 99u);
  EXPECT_EQ(dec.spec.input_path, "/data/x.bin");
  EXPECT_EQ(dec.spec.policy, sre::DispatchPolicy::NonSpeculative);
}

TEST(DistProtocolTest, SubmitAckRoundTrip) {
  dist::SubmitAckMsg m;
  m.global_id = 5;
  m.accepted = false;
  m.shed_reason = "bulk queue full";
  m.queued = 9;
  const auto dec = dist::decode_submit_ack(dist::encode(m));
  EXPECT_EQ(dec.global_id, 5u);
  EXPECT_FALSE(dec.accepted);
  EXPECT_EQ(dec.shed_reason, "bulk queue full");
  EXPECT_EQ(dec.queued, 9u);
}

TEST(DistProtocolTest, ResultRoundTrip) {
  dist::ResultMsg m;
  m.global_id = 31;
  m.state = dist::WireState::Done;
  m.latency_us = 4200;
  m.rollbacks = 3;
  m.container = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto dec = dist::decode_result(dist::encode(m));
  EXPECT_EQ(dec.global_id, 31u);
  EXPECT_EQ(dec.state, dist::WireState::Done);
  EXPECT_EQ(dec.latency_us, 4200u);
  EXPECT_EQ(dec.rollbacks, 3u);
  EXPECT_EQ(dec.container, m.container);
}

TEST(DistProtocolTest, HeartbeatRoundTrip) {
  dist::HeartbeatMsg m;
  m.t_us = 987654;
  m.load = sample_load();
  const auto dec = dist::decode_heartbeat(dist::encode(m));
  EXPECT_EQ(dec.t_us, 987654u);
  expect_load_eq(dec.load, m.load);
}

// --- Hostile input -------------------------------------------------------

TEST(DistProtocolTest, TruncatedPayloadThrows) {
  dist::SubmitMsg m;
  m.spec.name = "x";
  auto p = dist::encode(m);
  // Every proper prefix must be rejected; none may decode or over-read.
  for (std::size_t n = 0; n < p.size(); ++n) {
    const std::vector<std::uint8_t> cut(p.begin(), p.begin() + n);
    EXPECT_THROW((void)dist::decode_submit(cut), net::WireError)
        << "prefix of " << n << " bytes accepted";
  }
}

TEST(DistProtocolTest, TrailingGarbageThrows) {
  auto p = dist::encode(dist::HelloMsg{"r"});
  p.push_back(0x00);
  EXPECT_THROW((void)dist::decode_hello(p), net::WireError);
}

TEST(DistProtocolTest, OutOfRangePriorityThrows) {
  dist::SubmitMsg m;
  m.spec.name = "j";
  auto p = dist::encode(m);
  // Layout: u64 global_id, u32 name-len, name bytes, u8 priority, ...
  const std::size_t prio_ix = 8 + 4 + m.spec.name.size();
  ASSERT_LT(prio_ix, p.size());
  p[prio_ix] = 7;  // beyond Bulk
  EXPECT_THROW((void)dist::decode_submit(p), net::WireError);
}

TEST(DistProtocolTest, OutOfRangeWireStateThrows) {
  dist::ResultMsg m;
  auto p = dist::encode(m);
  p[8] = 9;  // state byte follows the u64 global_id
  EXPECT_THROW((void)dist::decode_result(p), net::WireError);
}

TEST(DistProtocolTest, GarbageBytesThrow) {
  const std::vector<std::uint8_t> junk = {0xFF, 0xFE, 0xFD, 0xFC,
                                          0xFB, 0xFA, 0xF9};
  EXPECT_THROW((void)dist::decode_hello_ack(junk), net::WireError);
  EXPECT_THROW((void)dist::decode_result(junk), net::WireError);
  EXPECT_THROW((void)dist::decode_heartbeat(junk), net::WireError);
}

TEST(DistProtocolTest, ToRunConfigExpandsSpec) {
  // Both sides expand a spec through the same function — byte-identical
  // distributed output hangs on this mapping staying deterministic.
  dist::SessionSpec s;
  s.file = wl::FileKind::Pdf;
  s.bytes = 4096;
  s.seed = 11;
  s.input_path = "/tmp/q.bin";
  s.policy = sre::DispatchPolicy::NonSpeculative;
  const auto cfg = dist::to_run_config(s);
  EXPECT_EQ(cfg.file, wl::FileKind::Pdf);
  EXPECT_EQ(cfg.bytes, 4096u);
  EXPECT_EQ(cfg.seed, 11u);
  EXPECT_EQ(cfg.input_path, "/tmp/q.bin");
  EXPECT_EQ(cfg.policy, sre::DispatchPolicy::NonSpeculative);
}

}  // namespace
