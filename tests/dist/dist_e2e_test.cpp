// End-to-end distributed serving tests: a real Router and real NodeAgents
// over loopback TCP, in one process so the tests can reach NodeAgent
// internals (freeze_for_test) and compare against a local SessionManager.
//
//   * LoopbackIdentity — the acceptance bar for the whole subsystem: the
//     same specs through router+2 agents and through one local
//     SessionManager produce byte-identical containers. Specs are
//     NonSpeculative: tolerant-speculation commits are schedule-dependent
//     by design, so bit-exactness is only promised without speculation
//     (the same caveat bench/serve_load's identity check documents).
//   * KillNode — a frozen (wedged, not crashed) agent trips the router's
//     heartbeat timeout; its in-flight sessions fail with the node and
//     cause attributed, survivors keep serving, drain does not hang.
//   * SpillBeforeShed — a node saturated for a class keeps its Bulk
//     traffic in the cluster: placement spills to a node with room rather
//     than submitting-and-shedding; only a cluster-wide full sheds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/node_agent.h"
#include "dist/protocol.h"
#include "dist/router.h"
#include "serve/session_manager.h"

namespace {

dist::SessionSpec make_spec(const std::string& name, serve::Priority p,
                            std::uint64_t seed, wl::FileKind kind) {
  dist::SessionSpec s;
  s.name = name;
  s.priority = p;
  s.file = kind;
  s.bytes = 48 * 1024;
  s.seed = seed;
  s.policy = sre::DispatchPolicy::NonSpeculative;
  return s;
}

serve::ServiceConfig small_service() {
  serve::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.max_concurrent = 2;
  return cfg;
}

TEST(DistE2ETest, LoopbackIdentity) {
  const std::vector<dist::SessionSpec> specs = {
      make_spec("s0", serve::Priority::Interactive, 1, wl::FileKind::Txt),
      make_spec("s1", serve::Priority::Batch, 2, wl::FileKind::Bmp),
      make_spec("s2", serve::Priority::Bulk, 3, wl::FileKind::Pdf),
      make_spec("s3", serve::Priority::Batch, 4, wl::FileKind::Txt),
      make_spec("s4", serve::Priority::Interactive, 5, wl::FileKind::Bmp),
      make_spec("s5", serve::Priority::Bulk, 6, wl::FileKind::Bmp),
  };

  // Distributed run: router + two agents over loopback.
  std::vector<std::vector<std::uint8_t>> dist_out(specs.size());
  {
    dist::NodeAgentOptions ao;
    ao.name = "alpha";
    ao.service = small_service();
    dist::NodeAgent a(ao);
    ao.name = "beta";
    dist::NodeAgent b(ao);
    a.start();
    b.start();

    dist::Router router;
    router.add_node("127.0.0.1", a.port());
    router.add_node("127.0.0.1", b.port());

    std::vector<std::uint64_t> ids;
    for (const auto& s : specs) {
      const auto out = router.submit(s);
      ASSERT_TRUE(out.placed) << out.shed_reason;
      ids.push_back(out.id);
    }
    std::size_t on_alpha = 0, on_beta = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto so = router.wait(ids[i]);
      ASSERT_EQ(so.state, dist::WireState::Done) << so.detail;
      ASSERT_FALSE(so.container.empty());
      dist_out[i] = so.container;
      (so.node == "alpha" ? on_alpha : on_beta) += 1;
    }
    // Least-load placement over two idle nodes must actually shard: with 6
    // sessions and a window of 2 per node, neither side takes everything.
    EXPECT_GT(on_alpha, 0u);
    EXPECT_GT(on_beta, 0u);
    router.drain();
    const auto t = router.totals();
    EXPECT_EQ(t.done, specs.size());
    EXPECT_EQ(t.failed, 0u);
    EXPECT_EQ(t.shed_router + t.shed_node, 0u);
  }

  // Local baseline: the same specs through one SessionManager.
  serve::SessionManager local(small_service());
  std::vector<serve::SessionId> ids;
  for (const auto& s : specs) {
    serve::SessionConfig sc;
    sc.name = s.name;
    sc.priority = s.priority;
    sc.run = dist::to_run_config(s);
    const auto out = local.submit(std::move(sc));
    ASSERT_TRUE(out.accepted);
    ids.push_back(out.id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const pipeline::RunResult* r = local.wait(ids[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->container, dist_out[i])
        << specs[i].name << ": distributed container differs from local";
  }
  local.drain();
}

TEST(DistE2ETest, KillNodeFailsInFlightAndSurvivorsServe) {
  dist::NodeAgentOptions ao;
  ao.name = "victim";
  ao.service = small_service();
  ao.heartbeat_interval_ms = 25;
  dist::NodeAgent victim(ao);
  ao.name = "survivor";
  dist::NodeAgent survivor(ao);
  victim.start();
  survivor.start();

  dist::RouterOptions ro;
  ro.heartbeat_timeout_ms = 200;
  ro.monitor_interval_ms = 20;
  dist::Router router(ro);
  router.add_node("127.0.0.1", victim.port());

  // Freeze first: the victim still acks submits and runs the work, but
  // delivers no results and no heartbeats — a wedged process, which only
  // the timeout path can catch.
  victim.freeze_for_test(true);
  std::vector<std::uint64_t> doomed;
  for (int i = 0; i < 2; ++i) {
    const auto out = router.submit(
        make_spec("doomed" + std::to_string(i), serve::Priority::Batch,
                  10 + static_cast<std::uint64_t>(i), wl::FileKind::Txt));
    ASSERT_TRUE(out.placed);
    EXPECT_EQ(out.node, "victim");
    doomed.push_back(out.id);
  }

  for (const auto id : doomed) {
    const auto so = router.wait(id);  // resolves via the monitor, not a hang
    EXPECT_EQ(so.state, dist::WireState::Failed);
    EXPECT_NE(so.detail.find("node 'victim' lost"), std::string::npos)
        << so.detail;
    EXPECT_NE(so.detail.find("heartbeat timeout"), std::string::npos)
        << so.detail;
  }
  EXPECT_EQ(router.alive_nodes(), 0u);

  // The cluster keeps serving on survivors.
  router.add_node("127.0.0.1", survivor.port());
  std::vector<std::uint64_t> ok;
  for (int i = 0; i < 2; ++i) {
    const auto out = router.submit(
        make_spec("ok" + std::to_string(i), serve::Priority::Batch,
                  20 + static_cast<std::uint64_t>(i), wl::FileKind::Txt));
    ASSERT_TRUE(out.placed);
    EXPECT_EQ(out.node, "survivor");
    ok.push_back(out.id);
  }
  for (const auto id : ok) {
    const auto so = router.wait(id);
    EXPECT_EQ(so.state, dist::WireState::Done) << so.detail;
  }

  router.drain();  // must not hang on the dead node
  const auto t = router.totals();
  EXPECT_EQ(t.node_deaths, 1u);
  EXPECT_EQ(t.failed, 2u);
  EXPECT_EQ(t.done, 2u);
  EXPECT_EQ(router.alive_nodes(), 1u);
  victim.freeze_for_test(false);
}

TEST(DistE2ETest, SpillBeforeShed) {
  // "full" has no Bulk queue at all — the saturated-for-Bulk case in the
  // exact form the capacity clause tests (queued >= capacity) — while
  // staying the least-loaded node overall. "roomy" has space.
  dist::NodeAgentOptions ao;
  ao.name = "full";
  ao.service = small_service();
  ao.service.shed.queue_capacity = {4, 4, 0};
  dist::NodeAgent full(ao);
  ao.name = "roomy";
  ao.service = small_service();
  dist::NodeAgent roomy(ao);
  full.start();
  roomy.start();

  dist::Router router;
  router.add_node("127.0.0.1", full.port());
  router.add_node("127.0.0.1", roomy.port());

  // Bulk spills: the least-loaded node would shed it, so it is placed on
  // the node with room instead — no shed anywhere.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto out = router.submit(
        make_spec("bulk" + std::to_string(i), serve::Priority::Bulk,
                  30 + static_cast<std::uint64_t>(i), wl::FileKind::Txt));
    ASSERT_TRUE(out.placed) << out.shed_reason;
    EXPECT_EQ(out.node, "roomy");
    EXPECT_TRUE(out.spilled);
    ids.push_back(out.id);
  }
  // Interactive is always eligible on the least-loaded node.
  {
    const auto out = router.submit(make_spec(
        "inter", serve::Priority::Interactive, 40, wl::FileKind::Txt));
    ASSERT_TRUE(out.placed);
    EXPECT_FALSE(out.spilled);
    ids.push_back(out.id);
  }
  for (const auto id : ids) {
    const auto so = router.wait(id);
    EXPECT_EQ(so.state, dist::WireState::Done) << so.detail;
  }
  router.drain();
  const auto t = router.totals();
  EXPECT_EQ(t.spilled, 3u);
  EXPECT_EQ(t.shed_router, 0u);
  EXPECT_EQ(t.shed_node, 0u);
  EXPECT_EQ(t.done, 4u);
}

TEST(DistE2ETest, ClusterFullShedsWithReason) {
  // When *every* alive node would shed the class, the router sheds with
  // "cluster-full"; with no nodes registered at all, "no-nodes".
  dist::NodeAgentOptions ao;
  ao.name = "full";
  ao.service = small_service();
  ao.service.shed.queue_capacity = {4, 4, 0};
  dist::NodeAgent full(ao);
  full.start();

  dist::Router router;
  router.add_node("127.0.0.1", full.port());
  const auto out =
      router.submit(make_spec("b", serve::Priority::Bulk, 50, wl::FileKind::Txt));
  EXPECT_FALSE(out.placed);
  EXPECT_EQ(out.shed_reason, "cluster-full");
  const auto so = router.wait(out.id);
  EXPECT_EQ(so.state, dist::WireState::Shed);
  router.drain();

  dist::Router empty;
  const auto miss =
      empty.submit(make_spec("x", serve::Priority::Batch, 51, wl::FileKind::Txt));
  EXPECT_FALSE(miss.placed);
  EXPECT_EQ(miss.shed_reason, "no-nodes");
}

}  // namespace
