// Trace recorder + exporters: the observer must see a faithful picture of
// the run, and the exporters must produce well-formed artifacts.
#include <gtest/gtest.h>

#include "pipeline/driver.h"
#include "sim/sim_executor.h"
#include "sre/runtime.h"
#include "support/json_lite.h"
#include "trace/exporters.h"
#include "trace/recorder.h"

namespace {

using tracelog::Recorder;

TEST(Recorder, CapturesASimpleRun) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  Recorder rec;
  rt.set_observer(&rec);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(2));

  auto a = rt.make_task("a", sre::TaskClass::Natural, 0, 1, 100,
                        [](sre::TaskContext&) {});
  auto b = rt.make_task("b", sre::TaskClass::Natural, 0, 2, 50,
                        [](sre::TaskContext&) {});
  rt.add_dependency(a, b);
  rt.submit(a);
  rt.submit(b);
  ex.run();

  const auto tasks = rec.tasks();
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].name, "a");
  EXPECT_TRUE(tasks[0].finished);
  EXPECT_FALSE(tasks[0].aborted);
  EXPECT_EQ(tasks[0].dispatch_us, 0u);
  EXPECT_EQ(tasks[0].finish_us, 100u);
  EXPECT_EQ(tasks[1].dispatch_us, 100u);
  EXPECT_EQ(tasks[1].finish_us, 150u);
  ASSERT_EQ(rec.edges().size(), 1u);
  EXPECT_EQ(rec.edges()[0].producer, tasks[0].id);
  EXPECT_EQ(rec.edges()[0].consumer, tasks[1].id);
  EXPECT_EQ(rec.end_time_us(), 150u);
  EXPECT_EQ(rec.executed_count(), 2u);
  EXPECT_EQ(rec.aborted_count(), 0u);
  EXPECT_GE(rec.cpus_observed(), 1u);
}

TEST(Recorder, TracksEpochLifecycles) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  Recorder rec;
  rt.set_observer(&rec);
  const auto e1 = rt.open_epoch();
  const auto e2 = rt.open_epoch();
  rt.abort_epoch(e1);
  rt.mark_epoch_committed(e2);
  const auto epochs = rec.epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_TRUE(epochs[0].aborted);
  EXPECT_FALSE(epochs[0].committed);
  EXPECT_TRUE(epochs[1].committed);
}

TEST(Recorder, FullPipelineRunIsConsistentWithCounters) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Bmp,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 2048 * 1024;  // rollback scenario
  Recorder rec;
  const auto res = pipeline::run_sim(cfg, &rec);
  EXPECT_EQ(rec.executed_count(), res.counters.tasks_executed);
  EXPECT_EQ(rec.aborted_count(), res.counters.tasks_aborted);
  EXPECT_EQ(rec.end_time_us(), res.makespan_us);
  EXPECT_GE(rec.epochs().size(), 1u);
  // Exactly one epoch resolves the run as committed.
  std::size_t committed = 0;
  for (const auto& e : rec.epochs()) {
    if (e.committed) ++committed;
  }
  EXPECT_EQ(committed, res.spec_committed ? 1u : 0u);
}

TEST(Exporters, ChromeTraceIsWellFormedJson) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 128 * 1024;
  Recorder rec;
  (void)pipeline::run_sim(cfg, &rec);
  const auto json = tracelog::to_chrome_trace(rec);
  EXPECT_TRUE(json_lite::valid(json))
      << "chrome trace is not valid JSON; first bad byte at offset "
      << json_lite::error_at(json);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("count[0]"), std::string::npos);
}

TEST(Exporters, ChromeTraceEscapesHostileTaskNames) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  Recorder rec;
  rt.set_observer(&rec);
  sim::SimExecutor ex(rt, sim::PlatformConfig::x86(1));
  auto t = rt.make_task("evil\"name\\with\nnewline\tand\x01ctl",
                        sre::TaskClass::Natural, 0, 1, 10,
                        [](sre::TaskContext&) {});
  rt.submit(t);
  ex.run();
  const auto json = tracelog::to_chrome_trace(rec);
  EXPECT_TRUE(json_lite::valid(json))
      << "first bad byte at offset " << json_lite::error_at(json);
}

TEST(Exporters, DotContainsNodesAndEdges) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 256 * 1024;  // ≥2 reduces, so speculative tasks exist
  Recorder rec;
  (void)pipeline::run_sim(cfg, &rec);
  const auto dot = tracelog::to_dot(rec);
  EXPECT_NE(dot.find("digraph dfg"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos)
      << "speculative tasks are drawn dashed, as in the paper's figures";
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos)
      << "check tasks are diamonds, as in the paper's figures";
}

TEST(Exporters, DotRespectsTaskCap) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 256 * 1024;
  Recorder rec;
  (void)pipeline::run_sim(cfg, &rec);
  ASSERT_GT(rec.task_count(), 10u);
  const auto small = tracelog::to_dot(rec, 10);
  const auto full = tracelog::to_dot(rec, 0);
  EXPECT_LT(small.size(), full.size());

  // Exactly max_tasks node definitions survive the cap; the full dump has
  // one per recorded task.
  const auto count_nodes = [](const std::string& dot) {
    std::size_t n = 0;
    for (std::size_t p = dot.find("[label="); p != std::string::npos;
         p = dot.find("[label=", p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_nodes(small), 10u);
  EXPECT_EQ(count_nodes(full), rec.task_count());
}

TEST(Exporters, TimelineShowsSpeculationAndIdle) {
  auto cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt,
                                           sre::DispatchPolicy::Balanced);
  cfg.bytes = 256 * 1024;
  cfg.platform = sim::PlatformConfig::x86(4);
  Recorder rec;
  (void)pipeline::run_sim(cfg, &rec);
  const auto timeline = tracelog::utilization_timeline(rec, 80);
  EXPECT_NE(timeline.find("cpu 0"), std::string::npos);
  EXPECT_NE(timeline.find("cpu 3"), std::string::npos);
  EXPECT_NE(timeline.find('s'), std::string::npos) << "speculative slices";
  EXPECT_NE(timeline.find('#'), std::string::npos) << "natural slices";
}

TEST(Exporters, EmptyRecorderDegradesGracefully) {
  Recorder rec;
  EXPECT_EQ(tracelog::utilization_timeline(rec), "(no executed tasks)\n");
  EXPECT_NE(tracelog::to_dot(rec).find("digraph"), std::string::npos);
  const auto json = tracelog::to_chrome_trace(rec);
  EXPECT_EQ(json, "[]\n");
  EXPECT_TRUE(json_lite::valid(json));
}

// Regression: an observed-but-never-executed run (tasks created, nothing
// dispatched — zero end time) must not divide by zero or emit malformed
// artifacts.
TEST(Exporters, CreatedButNeverExecutedRunDegradesGracefully) {
  sre::Runtime rt(sre::DispatchPolicy::Balanced);
  Recorder rec;
  rt.set_observer(&rec);
  // Created + blocked forever (producer never submitted), so nothing runs.
  auto producer = rt.make_task("p", sre::TaskClass::Natural, 0, 1, 10,
                               [](sre::TaskContext&) {});
  auto consumer = rt.make_task("c", sre::TaskClass::Natural, 0, 1, 10,
                               [](sre::TaskContext&) {});
  rt.add_dependency(producer, consumer);
  rt.submit(consumer);

  EXPECT_EQ(rec.executed_count(), 0u);
  EXPECT_EQ(rec.end_time_us(), 0u);
  EXPECT_EQ(tracelog::utilization_timeline(rec), "(no executed tasks)\n");
  const auto json = tracelog::to_chrome_trace(rec);
  EXPECT_EQ(json, "[]\n");
  EXPECT_TRUE(json_lite::valid(json));
  const auto dot = tracelog::to_dot(rec);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t" + std::to_string(producer->id())), std::string::npos);
}

}  // namespace
