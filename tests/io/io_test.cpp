#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "io/arrival_model.h"
#include "io/block_source.h"

namespace {

using sio::BlockSource;

TEST(DiskArrival, LinearSchedule) {
  const sio::DiskArrival d(10);
  EXPECT_EQ(d.arrival_us(0), 10u);
  EXPECT_EQ(d.arrival_us(9), 100u);
}

TEST(SocketArrival, StrictlyIncreasingDespiteJitter) {
  const sio::SocketArrival s(5500, 900, 12345);
  sio::Micros prev = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const sio::Micros t = s.arrival_us(i);
    EXPECT_GT(t, prev) << i;
    prev = t;
  }
}

TEST(SocketArrival, DeterministicPerSeed) {
  const sio::SocketArrival a(5500, 900, 1);
  const sio::SocketArrival b(5500, 900, 1);
  const sio::SocketArrival c(5500, 900, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.arrival_us(i), b.arrival_us(i));
    any_diff |= (a.arrival_us(i) != c.arrival_us(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(SocketArrival, ZeroJitterIsLinear) {
  const sio::SocketArrival s(100, 0, 7);
  EXPECT_EQ(s.arrival_us(0), 100u);
  EXPECT_EQ(s.arrival_us(4), 500u);
}

TEST(ExplicitArrival, ReplaysSchedule) {
  const sio::ExplicitArrival e({5, 9, 40});
  EXPECT_EQ(e.arrival_us(1), 9u);
  EXPECT_THROW(e.arrival_us(3), std::out_of_range);
}

TEST(PoissonArrival, DeterministicPerSeedStrictlyIncreasing) {
  const sio::PoissonArrival a(500.0, 1);
  const sio::PoissonArrival b(500.0, 1);
  const sio::PoissonArrival c(500.0, 2);
  sio::Micros prev = 0;
  bool any_diff = false;
  for (std::size_t i = 0; i < 500; ++i) {
    const sio::Micros t = a.arrival_us(i);
    EXPECT_GT(t, prev) << i;
    prev = t;
    EXPECT_EQ(t, b.arrival_us(i));
    any_diff |= (t != c.arrival_us(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(PoissonArrival, SampleMeanMatchesConfiguredGap) {
  // The exponential inter-arrival mean must land near mean_gap_us; with
  // n=20000 samples the sample mean of an exponential is within a few
  // percent with overwhelming probability (the sequence is deterministic,
  // so this is not a flaky bound — it pins the generator).
  const double mean_gap = 800.0;
  const std::size_t n = 20'000;
  const sio::PoissonArrival p(mean_gap, 99);
  const double total = static_cast<double>(p.arrival_us(n - 1));
  const double sample_mean = total / static_cast<double>(n);
  EXPECT_NEAR(sample_mean, mean_gap, 0.05 * mean_gap);
}

TEST(PoissonArrival, RandomAccessMatchesSequentialAccess) {
  const sio::PoissonArrival seq(300.0, 7);
  const sio::PoissonArrival rnd(300.0, 7);
  std::vector<sio::Micros> expect;
  for (std::size_t i = 0; i < 50; ++i) expect.push_back(seq.arrival_us(i));
  // Out-of-order first touch must extend the prefix sum identically.
  EXPECT_EQ(rnd.arrival_us(49), expect[49]);
  EXPECT_EQ(rnd.arrival_us(10), expect[10]);
  EXPECT_EQ(rnd.arrival_us(0), expect[0]);
}

TEST(PoissonArrival, BurstsClusterButKeepLongRunRate) {
  const std::size_t burst = 4;
  const sio::PoissonArrival p(250.0, 5, burst, /*intra_burst_gap_us=*/1);
  // Inside a burst the gap is the tiny fixed intra-burst gap.
  for (std::size_t i = 0; i < 40; ++i) {
    const sio::Micros gap = p.arrival_us(i + 1) - p.arrival_us(i);
    if ((i + 1) % burst != 0) {
      EXPECT_EQ(gap, 1u) << i;
    }
  }
  // Long-run rate stays ~1/mean_gap despite the clustering.
  const std::size_t n = 20'000;
  const double sample_mean =
      static_cast<double>(p.arrival_us(n - 1)) / static_cast<double>(n);
  EXPECT_NEAR(sample_mean, 250.0, 0.08 * 250.0);
}

TEST(PoissonArrival, RejectsInvalidParameters) {
  EXPECT_THROW(sio::PoissonArrival(0.0, 1), std::invalid_argument);
  EXPECT_THROW(sio::PoissonArrival(-5.0, 1), std::invalid_argument);
  EXPECT_THROW(sio::PoissonArrival(100.0, 1, /*burst_len=*/0),
               std::invalid_argument);
}

TEST(BlockSource, SplitsIntoBlocks) {
  std::vector<std::uint8_t> data(10000, 7);
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.n_blocks(), 3u);
  EXPECT_EQ(src.block(0).size(), 4096u);
  EXPECT_EQ(src.block(2).size(), 10000u - 2 * 4096u);
  EXPECT_EQ(src.total_bytes(), 10000u);
  EXPECT_THROW(src.block(3), std::out_of_range);
}

TEST(BlockSource, ValidatesInputs) {
  EXPECT_THROW(BlockSource({1, 2}, 0, std::make_shared<sio::DiskArrival>()),
               std::invalid_argument);
  EXPECT_THROW(BlockSource({1, 2}, 4096, nullptr), std::invalid_argument);
}

TEST(BlockSource, EmptyInputIsAValidZeroBlockStream) {
  const BlockSource src(std::vector<std::uint8_t>{}, 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.n_blocks(), 0u);
  EXPECT_EQ(src.total_bytes(), 0u);
  EXPECT_EQ(src.last_arrival_us(), 0u);
  EXPECT_THROW(src.block(0), std::out_of_range);
  src.for_each_arrival([](std::size_t, sio::Micros) { FAIL(); });
}

TEST(BlockSource, EmptySpanIsAValidZeroBlockStream) {
  // Zero-length borrowed view (null data pointer): must behave exactly like
  // the empty-vector stream, not touch the pointer.
  const BlockSource src(std::span<const std::uint8_t>{}, 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.n_blocks(), 0u);
  EXPECT_EQ(src.total_bytes(), 0u);
  EXPECT_EQ(src.bytes().size(), 0u);
  EXPECT_THROW(src.block(0), std::out_of_range);
  src.for_each_arrival([](std::size_t, sio::Micros) { FAIL(); });
}

TEST(BlockSource, SpanViewIsZeroCopy) {
  std::vector<std::uint8_t> backing(4096 + 100);
  for (std::size_t i = 0; i < backing.size(); ++i) {
    backing[i] = static_cast<std::uint8_t>(i * 7);
  }
  const BlockSource src(std::span<const std::uint8_t>(backing), 4096,
                        std::make_shared<sio::DiskArrival>());
  ASSERT_EQ(src.n_blocks(), 2u);
  // Blocks alias the caller's storage — no copy happened.
  EXPECT_EQ(src.block(0).data(), backing.data());
  EXPECT_EQ(src.block(1).data(), backing.data() + 4096);
  EXPECT_EQ(src.block(1).size(), 100u);  // final partial block is short
  backing[4096] = 0xAB;
  EXPECT_EQ(src.block(1)[0], 0xAB);
  EXPECT_EQ(src.owner(), nullptr);
}

TEST(BlockSource, SpanViewOwnerKeepsStorageAlive) {
  auto backing = std::make_shared<std::vector<std::uint8_t>>(5000, 42);
  const BlockSource src(
      std::span<const std::uint8_t>(backing->data(), backing->size()), 4096,
      std::make_shared<sio::DiskArrival>(), backing);
  const auto* data = backing->data();
  backing.reset();  // source's owner ref keeps the vector alive
  EXPECT_EQ(src.block(0).data(), data);
  EXPECT_EQ(src.block(1).size(), 5000u - 4096u);
  EXPECT_EQ(src.block(1)[0], 42u);
}

TEST(BlockSource, NonBlockAlignedSizes) {
  // One-byte stream: a single one-byte block.
  const BlockSource tiny(std::vector<std::uint8_t>{9}, 4096,
                         std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(tiny.n_blocks(), 1u);
  EXPECT_EQ(tiny.block(0).size(), 1u);
  EXPECT_EQ(tiny.block(0)[0], 9u);

  // Exactly block-aligned: no phantom trailing block.
  const BlockSource exact(std::vector<std::uint8_t>(4096 * 3, 1), 4096,
                          std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(exact.n_blocks(), 3u);
  EXPECT_EQ(exact.block(2).size(), 4096u);
  EXPECT_THROW(exact.block(3), std::out_of_range);

  // One byte over a boundary: final block has length 1.
  const BlockSource over(std::vector<std::uint8_t>(4096 + 1, 2), 4096,
                         std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(over.n_blocks(), 2u);
  EXPECT_EQ(over.block(1).size(), 1u);
}

TEST(BlockSource, MapFileServesBlocksFromTheMapping) {
  const std::string path = ::testing::TempDir() + "/block_source_map.bin";
  std::vector<std::uint8_t> data(4096 * 2 + 123);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 251);
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  }
  const BlockSource src =
      BlockSource::map_file(path, 4096, std::make_shared<sio::DiskArrival>());
  ASSERT_EQ(src.n_blocks(), 3u);
  EXPECT_EQ(src.total_bytes(), data.size());
  EXPECT_EQ(src.block(2).size(), 123u);  // final partial block
  EXPECT_TRUE(std::equal(src.bytes().begin(), src.bytes().end(),
                         data.begin(), data.end()));
  // Blocks are views into one contiguous mapping, not copies.
  EXPECT_EQ(src.block(1).data(), src.bytes().data() + 4096);
  EXPECT_NE(src.owner(), nullptr);
  std::remove(path.c_str());
}

TEST(BlockSource, MapFileEmptyFileIsZeroBlocks) {
  const std::string path = ::testing::TempDir() + "/block_source_empty.bin";
  { std::ofstream f(path, std::ios::binary | std::ios::trunc); }
  const BlockSource src =
      BlockSource::map_file(path, 4096, std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.n_blocks(), 0u);
  EXPECT_EQ(src.total_bytes(), 0u);
  EXPECT_THROW(src.block(0), std::out_of_range);
  std::remove(path.c_str());
}

TEST(BlockSource, MapFileMissingFileThrows) {
  EXPECT_THROW(BlockSource::map_file("/nonexistent/definitely_missing.bin",
                                     4096,
                                     std::make_shared<sio::DiskArrival>()),
               std::runtime_error);
}

TEST(BlockSource, MapFileValidatesArguments) {
  EXPECT_THROW(BlockSource::map_file("/dev/null", 0,
                                     std::make_shared<sio::DiskArrival>()),
               std::invalid_argument);
  EXPECT_THROW(BlockSource::map_file("/dev/null", 4096, nullptr),
               std::invalid_argument);
}

TEST(BlockSource, ForEachArrivalVisitsAllInOrder) {
  std::vector<std::uint8_t> data(4096 * 5, 1);
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>(3));
  std::vector<std::pair<std::size_t, sio::Micros>> seen;
  src.for_each_arrival([&seen](std::size_t i, sio::Micros t) {
    seen.emplace_back(i, t);
  });
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i].first, i);
    EXPECT_EQ(seen[i].second, (i + 1) * 3);
  }
  EXPECT_EQ(src.last_arrival_us(), 15u);
}

TEST(BlockSource, BlockViewsAliasTheData) {
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.block(1)[0], static_cast<std::uint8_t>(4096));
  EXPECT_EQ(src.bytes().size(), 8192u);
}

}  // namespace
