#include <gtest/gtest.h>

#include "io/arrival_model.h"
#include "io/block_source.h"

namespace {

using sio::BlockSource;

TEST(DiskArrival, LinearSchedule) {
  const sio::DiskArrival d(10);
  EXPECT_EQ(d.arrival_us(0), 10u);
  EXPECT_EQ(d.arrival_us(9), 100u);
}

TEST(SocketArrival, StrictlyIncreasingDespiteJitter) {
  const sio::SocketArrival s(5500, 900, 12345);
  sio::Micros prev = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const sio::Micros t = s.arrival_us(i);
    EXPECT_GT(t, prev) << i;
    prev = t;
  }
}

TEST(SocketArrival, DeterministicPerSeed) {
  const sio::SocketArrival a(5500, 900, 1);
  const sio::SocketArrival b(5500, 900, 1);
  const sio::SocketArrival c(5500, 900, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.arrival_us(i), b.arrival_us(i));
    any_diff |= (a.arrival_us(i) != c.arrival_us(i));
  }
  EXPECT_TRUE(any_diff);
}

TEST(SocketArrival, ZeroJitterIsLinear) {
  const sio::SocketArrival s(100, 0, 7);
  EXPECT_EQ(s.arrival_us(0), 100u);
  EXPECT_EQ(s.arrival_us(4), 500u);
}

TEST(ExplicitArrival, ReplaysSchedule) {
  const sio::ExplicitArrival e({5, 9, 40});
  EXPECT_EQ(e.arrival_us(1), 9u);
  EXPECT_THROW(e.arrival_us(3), std::out_of_range);
}

TEST(BlockSource, SplitsIntoBlocks) {
  std::vector<std::uint8_t> data(10000, 7);
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.n_blocks(), 3u);
  EXPECT_EQ(src.block(0).size(), 4096u);
  EXPECT_EQ(src.block(2).size(), 10000u - 2 * 4096u);
  EXPECT_EQ(src.total_bytes(), 10000u);
  EXPECT_THROW(src.block(3), std::out_of_range);
}

TEST(BlockSource, ValidatesInputs) {
  EXPECT_THROW(BlockSource({}, 4096, std::make_shared<sio::DiskArrival>()),
               std::invalid_argument);
  EXPECT_THROW(BlockSource({1, 2}, 0, std::make_shared<sio::DiskArrival>()),
               std::invalid_argument);
  EXPECT_THROW(BlockSource({1, 2}, 4096, nullptr), std::invalid_argument);
}

TEST(BlockSource, ForEachArrivalVisitsAllInOrder) {
  std::vector<std::uint8_t> data(4096 * 5, 1);
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>(3));
  std::vector<std::pair<std::size_t, sio::Micros>> seen;
  src.for_each_arrival([&seen](std::size_t i, sio::Micros t) {
    seen.emplace_back(i, t);
  });
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seen[i].first, i);
    EXPECT_EQ(seen[i].second, (i + 1) * 3);
  }
  EXPECT_EQ(src.last_arrival_us(), 15u);
}

TEST(BlockSource, BlockViewsAliasTheData) {
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const BlockSource src(std::move(data), 4096,
                        std::make_shared<sio::DiskArrival>());
  EXPECT_EQ(src.block(1)[0], static_cast<std::uint8_t>(4096));
  EXPECT_EQ(src.bytes().size(), 8192u);
}

}  // namespace
