// End-to-end smoke: small Huffman pipeline runs under both executors.
#include <gtest/gtest.h>

#include "pipeline/driver.h"

namespace {

pipeline::RunConfig small_config(sre::DispatchPolicy policy) {
  pipeline::RunConfig cfg = pipeline::RunConfig::x86_disk(wl::FileKind::Txt, policy);
  cfg.bytes = 256 * 1024;  // 64 blocks: fast
  return cfg;
}

TEST(Smoke, NonSpeculativeSimRoundTrips) {
  const auto res = pipeline::run_sim(small_config(sre::DispatchPolicy::NonSpeculative));
  EXPECT_FALSE(res.spec_committed);
  pipeline::verify_roundtrip(res);
}

TEST(Smoke, BalancedSimRoundTrips) {
  const auto res = pipeline::run_sim(small_config(sre::DispatchPolicy::Balanced));
  pipeline::verify_roundtrip(res);
}

TEST(Smoke, BalancedThreadedRoundTrips) {
  const auto res = pipeline::run_threaded(small_config(sre::DispatchPolicy::Balanced),
                                      /*workers=*/4, /*arrival_time_scale=*/0.05);
  pipeline::verify_roundtrip(res);
}

}  // namespace
